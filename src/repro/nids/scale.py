"""Synthetic ruleset scaler: Snort rule *text* at production rule counts.

The paper's production ruleset is >48k Talos signatures; the study rules
(:mod:`repro.exploits.rulegen`) are dozens.  Everything between — the trie
prefilter's factoring, the plan compiler, the publication-ordered merge,
the arena transfer plane — behaves differently at four orders of magnitude,
so this module grows a *deterministic*, seeded ruleset to O(10k) rules and
emits it **as rule text**, so the parser is exercised at the same scale as
the engine (several parser crashes only ever surfaced through generated
text at volume; see the regression tests in ``tests/test_nids.py``).

Realism knobs, mirrored from what production rulesets look like:

* **pattern lengths** mix short (collision-prone), medium, and long
  contents, drawn per-family so related signatures share byte prefixes —
  the shape that stresses the trie prefix-closure and overlap-confirm
  paths of :class:`repro.nids.prefilter.RegexPrefilter`;
* **port lists** mix ``any``, single ports, negations, ranges, and
  bracketed lists *with spaces* (``[80, 8080]`` — valid Snort, and a
  former parser crash);
* **publication dates** spread over the study's two-year window with
  collisions, exercising the (published, insertion index) rank ordering;
* a small **fodder fraction** of deliberately unsound rules (generic
  endpoints, sub-4-byte contents, pure pcre) keeps the linter honest:
  every gating finding must map back to a fodder SID
  (:func:`unexpected_findings`).

Every generated rule records the exact :class:`~repro.nids.rule.Rule` AST
its text must parse back to — the hypothesis round-trip property in
``tests/test_rule_scale.py`` is ``parse_rule(scaled.text) == scaled.rule``.

Generation is prefix-stable: rule ``i`` is derived from its own
``random.Random(seed, i)`` stream, so a 64-rule ruleset is literally the
first 64 rules of the 10k one — which is what lets the
``rules-vs-throughput`` sweep (:func:`throughput_sweep`) vary only ruleset
size while holding the rule *population* fixed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime, timedelta
from random import Random
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.session import TcpSession
from repro.nids.lint import LintFinding, lint_rules
from repro.nids.parser import encode_content, parse_rule
from repro.nids.rule import (
    ContentMatch,
    HttpBuffer,
    IsDataAt,
    PcreMatch,
    PortSpec,
    Rule,
    SizeBound,
)
from repro.nids.ruleset import Ruleset
from repro.util.timeutil import utc

#: Start of the synthetic publication window (the study's two years).
WINDOW_START = utc(2021, 6, 1)

#: Content families: related signatures share these byte prefixes, which is
#: exactly the shape that exercises trie factoring, prefix-closure, and
#: overlap confirmation in the prefilter.  Deliberately free of the
#: linter's generic-endpoint fragments so a non-fodder rule never trips a
#: gating check.
_FAMILIES: Tuple[bytes, ...] = (
    b"/owa/auth/logon.aspx?replaceCurrent=",
    b"/solr/select?q=",
    b"/struts2-showcase/",
    b"/HNAP1/SOAPAction/",
    b"/vpn/../vpns/portal/scripts/",
    b"/telescope/probe/v1/",
    b"${jndi:ldap://",
    b"/boaform/formPing?target_addr=",
    b"User-Agent: Mozilla/zgrab-",
    b"\xde\xad\xbe\xef\x00\x01scaled-",
    b"/plugins/servlet/oauth/users/icon-uri?consumerUri=",
    b"/shell?cd+/tmp;rm+-rf+",
)

#: Suffix alphabet for per-rule pattern tails (kept clear of content
#: specials and of characters that could assemble a generic endpoint).
_SUFFIX_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHJKLMNPQRSTUVWXYZ0123456789_-."

#: Destination-port spec texts with rough production weights.  The
#: bracketed-list-with-spaces form is deliberate: valid Snort that the
#: pre-fix header tokenizer could not split.
_PORT_SPECS: Tuple[Tuple[str, int], ...] = (
    ("any", 40),
    ("80", 10),
    ("443", 5),
    ("[80, 8080]", 10),
    ("[443,8443]", 5),
    ("8000:8100", 10),
    ("!80", 5),
    ("[80,443,8000:8100]", 15),
)

_CLASSTYPES = (
    "attempted-admin",
    "web-application-attack",
    "attempted-user",
    "trojan-activity",
    "misc-attack",
)

_BUFFER_MODIFIER = {
    HttpBuffer.HTTP_URI: "http_uri",
    HttpBuffer.HTTP_HEADER: "http_header",
    HttpBuffer.HTTP_COOKIE: "http_cookie",
    HttpBuffer.HTTP_CLIENT_BODY: "http_client_body",
    HttpBuffer.HTTP_METHOD: "http_method",
}

#: Lint checks that indicate an unsound rule *shape* (as opposed to the
#: expected-at-volume port/reference findings).  The lint gate requires
#: every finding from these checks to map to a fodder SID.
GATING_CHECKS = ("short-content", "generic-endpoint", "no-fast-pattern")

#: Generic-endpoint fodder contents (lowercase variants hit the linter's
#: endpoint fragments; none carries structure hints).
_GENERIC_FODDER = (
    b"/login.cgi?user=",
    b"/admin/config.php",
    b"/manager/status/all",
    b"/index.jsp?page=",
    b"/wp-login.php?redirect=",
)


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs for one deterministic scaled ruleset."""

    size: int = 10_000
    seed: int = 20260801
    sid_base: int = 3_000_000
    #: Fraction of rules that are deliberately unsound (lint fodder).
    fodder_fraction: float = 0.01
    #: Fraction of *regular* rules that carry a pcre alongside contents.
    pcre_fraction: float = 0.15
    #: Publication window length in days.
    window_days: int = 730

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("size must be >= 1")
        if not 0.0 <= self.fodder_fraction <= 1.0:
            raise ValueError("fodder_fraction must be in [0, 1]")


@dataclass(frozen=True)
class ScaledRule:
    """One generated rule: its text, the AST the text must parse back to,
    its publication instant, and its fodder category (None for sound
    rules; ``generic`` / ``short`` / ``pure_pcre`` otherwise)."""

    text: str
    rule: Rule
    published: datetime
    fodder: Optional[str] = None


def _pattern_for(rng: Random, *, upper: bool) -> bytes:
    """One content pattern: family prefix + tail of realistic length."""
    family = rng.choice(_FAMILIES)
    # ~8% of patterns are a bare family prefix — a strict prefix of the
    # sibling patterns, forcing the prefix-closure path.
    if rng.random() < 0.08:
        return family
    bucket = rng.random()
    if bucket < 0.3:
        tail_len = rng.randint(2, 6)  # short-ish tails, heavy overlap
    elif bucket < 0.85:
        tail_len = rng.randint(7, 18)
    else:
        tail_len = rng.randint(19, 36)
    tail = "".join(rng.choice(_SUFFIX_ALPHABET) for _ in range(tail_len))
    if upper:
        tail = tail.upper()
    return family + tail.encode("ascii")


def _render_content(content: ContentMatch) -> str:
    """Option text for a :class:`ContentMatch`, modifiers included."""
    bang = "!" if content.negated else ""
    parts = [f'content:{bang}"{encode_content(content.pattern)}";']
    if content.nocase:
        parts.append("nocase;")
    if content.buffer is not HttpBuffer.RAW:
        parts.append(f"{_BUFFER_MODIFIER[content.buffer]};")
    if content.offset is not None:
        parts.append(f"offset:{content.offset};")
    if content.depth is not None:
        parts.append(f"depth:{content.depth};")
    if content.distance is not None:
        parts.append(f"distance:{content.distance};")
    if content.within is not None:
        parts.append(f"within:{content.within};")
    if content.fast_pattern:
        parts.append("fast_pattern;")
    return " ".join(parts)


def _regular_options(
    rng: Random, config: ScaleConfig
) -> Tuple[List[str], List[object]]:
    """Detection options (text fragments + expected AST) for a sound rule."""
    fragments: List[str] = []
    options: List[object] = []

    n_contents = rng.choices((1, 2, 3), weights=(60, 30, 10))[0]
    for position in range(n_contents):
        pattern = _pattern_for(rng, upper=rng.random() < 0.1)
        nocase = rng.random() < 0.4
        buffer = rng.choices(
            (
                HttpBuffer.RAW,
                HttpBuffer.HTTP_URI,
                HttpBuffer.HTTP_HEADER,
                HttpBuffer.HTTP_CLIENT_BODY,
            ),
            weights=(60, 20, 10, 10),
        )[0]
        offset = depth = distance = within = None
        if position == 0:
            if rng.random() < 0.1:
                offset = rng.randint(0, 8)
                if rng.random() < 0.5:
                    depth = len(pattern) + offset + rng.randint(0, 24)
        elif rng.random() < 0.5:
            distance = rng.randint(0, 8)
            if rng.random() < 0.5:
                within = len(pattern) + rng.randint(0, 16)
        content = ContentMatch(
            pattern=pattern,
            nocase=nocase,
            buffer=buffer,
            offset=offset,
            depth=depth,
            distance=distance,
            within=within,
            fast_pattern=(position == 0 and rng.random() < 0.05),
        )
        fragments.append(_render_content(content))
        options.append(content)

    if rng.random() < 0.05:
        negated = ContentMatch(
            pattern=b"X-Scaled-Bypass" + rng.choice(b"0123456789").to_bytes(1, "big"),
            negated=True,
        )
        fragments.append(_render_content(negated))
        options.append(negated)

    if rng.random() < config.pcre_fraction:
        token = "".join(rng.choice(_SUFFIX_ALPHABET[:36]) for _ in range(6))
        body = f"{token}[0-9]{{1,3}}"
        flags_text = "i" if rng.random() < 0.5 else ""
        negated_pcre = rng.random() < 0.05
        bang = "!" if negated_pcre else ""
        fragments.append(f'pcre:{bang}"/{body}/{flags_text}";')
        options.append(
            PcreMatch(
                pattern=body,
                flags=re.IGNORECASE if flags_text else 0,
                negated=negated_pcre,
            )
        )

    if rng.random() < 0.05:
        bound_text = f">{rng.randint(32, 256)}"
        fragments.append(f"dsize:{bound_text};")
        options.append(SizeBound.parse("dsize", bound_text))

    if rng.random() < 0.03:
        offset = rng.randint(16, 512)
        fragments.append(f"isdataat:{offset},relative;")
        options.append(IsDataAt(offset=offset, relative=True))

    return fragments, options


def _fodder_options(rng: Random) -> Tuple[str, List[str], List[object]]:
    """Detection options for one deliberately unsound (fodder) rule."""
    category = rng.choice(("generic", "short", "pure_pcre"))
    fragments: List[str] = []
    options: List[object] = []
    if category == "generic":
        for pattern in rng.sample(_GENERIC_FODDER, rng.randint(1, 2)):
            content = ContentMatch(pattern=pattern, nocase=True)
            fragments.append(_render_content(content))
            options.append(content)
    elif category == "short":
        content = ContentMatch(
            pattern="".join(rng.choice(_SUFFIX_ALPHABET[:36]) for _ in range(3)).encode()
        )
        fragments.append(_render_content(content))
        options.append(content)
    else:  # pure_pcre: no content at all — bypasses the prefilter
        token = "".join(rng.choice(_SUFFIX_ALPHABET[:36]) for _ in range(8))
        fragments.append(f'pcre:"/{token}[0-9]{{2}}/i";')
        options.append(PcreMatch(pattern=f"{token}[0-9]{{2}}", flags=re.IGNORECASE))
    return category, fragments, options


def _generate_one(config: ScaleConfig, index: int) -> ScaledRule:
    """Rule ``index`` of the sequence (prefix-stable: independent stream)."""
    rng = Random(config.seed * 1_000_003 + index)
    sid = config.sid_base + index
    published = WINDOW_START + timedelta(
        days=rng.randrange(config.window_days), hours=rng.randrange(24)
    )

    fodder: Optional[str] = None
    if rng.random() < config.fodder_fraction:
        fodder, fragments, options = _fodder_options(rng)
    else:
        fragments, options = _regular_options(rng, config)

    msg = f"SCALED-{fodder or 'RULE'} synthetic signature {index}".upper()
    head = [f'msg:"{msg}";']
    flow_to_server = rng.random() < 0.7
    if flow_to_server:
        head.append("flow:to_server,established;")

    tail: List[str] = []
    references: List[Tuple[str, str]] = []
    if rng.random() < 0.9:
        cve = f"{published.year}-{rng.randint(1000, 99999)}"
        tail.append(f"reference:cve,{cve};")
        references.append(("cve", cve))
    metadata: Dict[str, str] = {}
    if rng.random() < 0.8:
        classtype = rng.choice(_CLASSTYPES)
        tail.append(f"classtype:{classtype};")
        metadata["classtype"] = classtype
    created = published.strftime("%Y_%m_%d")
    tail.append(f"metadata:created_at {created};")
    metadata["created_at"] = created
    rev = rng.randint(1, 3)
    tail.append(f"sid:{sid}; rev:{rev};")

    sport_text = "any"
    dport_text = rng.choices(
        [text for text, _ in _PORT_SPECS],
        weights=[weight for _, weight in _PORT_SPECS],
    )[0]
    option_block = " ".join(head + fragments + tail)
    text = (
        f"alert tcp $EXTERNAL_NET {sport_text} -> $HOME_NET {dport_text} "
        f"({option_block})"
    )
    rule = Rule(
        action="alert",
        protocol="tcp",
        src="$EXTERNAL_NET",
        src_ports=PortSpec.parse(sport_text),
        dst="$HOME_NET",
        dst_ports=PortSpec.parse(dport_text),
        msg=msg,
        sid=sid,
        rev=rev,
        options=tuple(options),
        references=tuple(references),
        metadata=metadata,
        flow_to_server=flow_to_server,
    )
    return ScaledRule(text=text, rule=rule, published=published, fodder=fodder)


def generate_scaled(config: ScaleConfig = ScaleConfig()) -> List[ScaledRule]:
    """The full scaled sequence for a config (deterministic, prefix-stable)."""
    return [_generate_one(config, index) for index in range(config.size)]


def generate_texts(config: ScaleConfig = ScaleConfig()) -> List[str]:
    """Just the rule texts (``repro rules gen`` output; feed to
    :func:`repro.nids.parser.parse_rules`)."""
    return [scaled.text for scaled in generate_scaled(config)]


def build_scaled_ruleset(
    config: ScaleConfig = ScaleConfig(),
    *,
    port_insensitive: bool = True,
    prefilter: Optional[str] = None,
    shards: Optional[int] = None,
) -> Ruleset:
    """Parse the generated texts into a ready :class:`Ruleset`.

    Always goes *through the text* (``parse_rule``, never the recorded
    AST), so every build exercises the parser at full scale.
    """
    ruleset = Ruleset(
        port_insensitive=port_insensitive, prefilter=prefilter, shards=shards
    )
    for scaled in generate_scaled(config):
        ruleset.add(parse_rule(scaled.text), scaled.published)
    return ruleset


def unexpected_findings(
    scaled: Sequence[ScaledRule], findings: Iterable[LintFinding]
) -> List[LintFinding]:
    """Gating lint findings that do *not* map to a fodder SID.

    The generator promises that every sound rule is lint-clean on the
    unsound-shape checks (:data:`GATING_CHECKS`); anything this returns is
    either a generator regression or a linter regression.
    """
    fodder_sids = {item.rule.sid for item in scaled if item.fodder is not None}
    return [
        finding
        for finding in findings
        if finding.check in GATING_CHECKS and finding.sid not in fodder_sids
    ]


def lint_scaled(
    scaled: Sequence[ScaledRule],
) -> Tuple[Dict[str, int], List[LintFinding]]:
    """Lint a scaled sequence: (per-check counts, unexpected gating findings)."""
    findings = lint_rules([item.rule for item in scaled])
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.check] = counts.get(finding.check, 0) + 1
    return counts, unexpected_findings(scaled, findings)


# -- synthetic traffic against a scaled ruleset -------------------------------

_BENIGN_PATHS = (
    "/",
    "/favicon.ico",
    "/robots.txt",
    "/static/app.js",
    "/healthz",
    "/metrics",
    "/img/logo.png",
)


def synthesize_sessions(
    count: int,
    scaled: Sequence[ScaledRule],
    *,
    seed: int = 7,
    hit_fraction: float = 0.3,
) -> List[TcpSession]:
    """A deterministic session corpus mixing benign traffic with payloads
    that embed scaled fast patterns (``hit_fraction`` of sessions).

    Embedded payloads guarantee prefilter nominations; rules whose full
    option chain is satisfiable from a flat embed (the single-content
    majority) also alert, so the corpus exercises nomination, ordered
    evaluation, and retention without hand-building per-rule traffic.
    """
    rng = Random(seed)
    with_patterns = [
        item
        for item in scaled
        if item.rule.fast_pattern is not None
    ]
    sessions: List[TcpSession] = []
    for session_id in range(count):
        start = WINDOW_START + timedelta(
            days=rng.randrange(730), seconds=rng.randrange(86400)
        )
        if with_patterns and rng.random() < hit_fraction:
            pattern = rng.choice(with_patterns).rule.fast_pattern.pattern
            payload = (
                b"GET /x" + pattern + b" HTTP/1.1\r\nHost: scaled.test\r\n\r\n"
            )
        else:
            path = rng.choice(_BENIGN_PATHS)
            payload = (
                f"GET {path}?r={rng.randrange(10**6)} HTTP/1.1\r\n"
                f"Host: host-{rng.randrange(512)}.example\r\n\r\n"
            ).encode("ascii")
        sessions.append(
            TcpSession(
                session_id=session_id,
                start=start,
                src_ip=rng.randrange(1, 2**32),
                src_port=rng.randrange(1024, 65536),
                dst_ip=rng.randrange(1, 2**32),
                dst_port=rng.choice((80, 443, 8080, 8443, 81)),
                payload=payload,
            )
        )
    return sessions


def throughput_sweep(
    *,
    sizes: Sequence[int] = (64, 1024, 4096, 10_000),
    session_count: int = 2000,
    seed: int = 20260801,
    workers: int = 2,
) -> Dict[str, object]:
    """Rules-vs-throughput: scan one corpus against rulesets of each size.

    Returns the ``rules_sweep`` record published to ``BENCH_pipeline.json``
    (and printed by ``repro rules bench``): per size, serial and parallel
    throughput plus the shard/compile telemetry that explains it.  The
    parallel pass forces the pool on (``threshold=0``) so small sweeps
    still measure pool dispatch rather than the break-even fallback.
    """
    from repro.nids.engine import scan_stream
    from repro.nids.parallel import parallel_scan

    entries: List[Dict[str, object]] = []
    for size in sizes:
        config = ScaleConfig(size=size, seed=seed)
        scaled = generate_scaled(config)
        clock = perf_counter()
        ruleset = build_scaled_ruleset(config)
        build_seconds = perf_counter() - clock
        sessions = synthesize_sessions(session_count, scaled, seed=seed)

        entry: Dict[str, object] = {
            "rules": size,
            "build_seconds": round(build_seconds, 4),
            "prefilter_shards": ruleset.prefilter_shards,
        }
        serial_alerts, scanned, serial_tel = scan_stream(ruleset, sessions)
        entry["serial"] = {
            "seconds": round(serial_tel.wall_seconds, 4),
            "sessions_per_second": round(
                scanned / serial_tel.wall_seconds if serial_tel.wall_seconds else 0.0,
                1,
            ),
            "alerts": len(serial_alerts),
            "shards_compiled": serial_tel.shards_compiled,
            "candidates_evaluated": serial_tel.candidates_evaluated,
        }
        parallel_alerts, scanned, parallel_tel = parallel_scan(
            ruleset, sessions, workers=workers, threshold=0
        )
        entry["parallel"] = {
            "workers": workers,
            "seconds": round(parallel_tel.wall_seconds, 4),
            "sessions_per_second": round(
                scanned / parallel_tel.wall_seconds
                if parallel_tel.wall_seconds
                else 0.0,
                1,
            ),
            "alerts": len(parallel_alerts),
            "shards_compiled": parallel_tel.shards_compiled,
            "pool_reuses": parallel_tel.pool_reuses,
        }
        entry["alerts_equal"] = serial_alerts == parallel_alerts
        entries.append(entry)
    return {
        "sizes": list(sizes),
        "session_count": session_count,
        "seed": seed,
        "entries": entries,
    }
