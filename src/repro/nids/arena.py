"""Shared-memory session arenas: the zero-copy scan transfer plane.

A parallel scan used to ship work to its workers by value — fork-inherited
session lists on Linux, pickled chunk lists elsewhere — and the transfer
cost swamped the match work.  This module replaces that with a **frame
arena**: the whole session archive (plus the pickled ruleset) is serialized
*once* into a compact flat byte format backed by
:class:`multiprocessing.shared_memory.SharedMemory`, and workers receive
nothing but ``(start, stop)`` index pairs.  Each worker attaches to the
segment by name and decodes only the frames of its slice through
``memoryview`` windows — no per-session pickling, identical behaviour on
every start method.

Frame format (version 1, little-endian, no padding)::

    header   magic "RPARENA1" | version u32 | count u64
             | ruleset_off u64 | ruleset_len u64 | table_off u64
             | heap_off u64 | heap_len u64
    ruleset  opaque bytes (a pickled Ruleset; may be empty)
    table    count fixed-width records (see RECORD below)
    heap     payload bytes, deduplicated (archives repeat payloads heavily,
             so identical payloads share one heap extent)

Each record stores the full :class:`~repro.net.session.TcpSession` field
set: id, start/end timestamps (microseconds since epoch plus a fixed
UTC-offset in seconds, ``TZ_NAIVE`` marking naive datetimes), addresses,
ports, flags, and the payload's ``(offset, length)`` into the heap.
Decoding is exact: ``decode_sessions(encode_sessions(s)) == s`` field for
field, timezone included (only fixed-offset tzinfo is representable; exotic
tzinfo objects raise :class:`ArenaFormatError` at encode time, and the
caller falls back to the pickle transfer path).

Lifecycle (the part that must survive crashes):

* :meth:`SessionArena.build` creates the segment under a
  ``repro-arena-<pid>-<token>`` name and registers a
  :func:`weakref.finalize` finalizer, so the segment is closed *and
  unlinked* when the arena is garbage-collected or the interpreter exits —
  a scan that raises mid-way cannot leak ``/dev/shm`` space;
* :meth:`SessionArena.attach` (worker side) only ever closes — the creator
  pid alone unlinks, so a worker exiting never destroys a segment the
  parent is still scheduling chunks against;
* a run killed with SIGKILL skips finalizers by definition; those orphans
  are named after their owning pid so ``repro cache gc`` (and the next
  parallel scan) can sweep them with the same pid-liveness + grace policy
  as ``*.tmp<pid>`` staging dirs (:func:`repro.cache.gc.collect_shm_garbage`).
"""

from __future__ import annotations

import os
import struct
import weakref
from datetime import datetime, timedelta, timezone
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.session import TcpSession

#: /dev/shm name prefix for arena segments; the embedded pid is the basis
#: of the orphan-sweep policy in :mod:`repro.cache.gc`.
ARENA_NAME_PREFIX = "repro-arena-"

MAGIC = b"RPARENA1"
VERSION = 1

#: header: magic, version, count, ruleset_off, ruleset_len, table_off,
#: heap_off, heap_len
_HEADER = struct.Struct("<8sIQQQQQQ")

#: record: session_id, start_us, start_tz, end_us, end_tz, flags,
#: src_ip, dst_ip, src_port, dst_port, payload_off, payload_len
_RECORD = struct.Struct("<qqiqiBIIHHQI")

_FLAG_ESTABLISHED = 1
_FLAG_HAS_END = 2

#: start_tz/end_tz sentinel for naive datetimes (no tzinfo).
TZ_NAIVE = -(2**31)

_EPOCH = datetime(1970, 1, 1)
_US = timedelta(microseconds=1)


class ArenaFormatError(ValueError):
    """A session cannot be framed (or a buffer is not a valid arena)."""


def _encode_datetime(value: datetime) -> Tuple[int, int]:
    """``datetime`` → ``(microseconds, utc_offset_seconds | TZ_NAIVE)``."""
    tz = value.tzinfo
    if tz is None:
        return (value - _EPOCH) // _US, TZ_NAIVE
    offset = value.utcoffset()
    if offset is None or offset % timedelta(seconds=1):
        raise ArenaFormatError(
            f"only fixed whole-second UTC offsets are frameable, got {tz!r}"
        )
    seconds = int(offset.total_seconds())
    if not -(2**31) < seconds < 2**31:  # pragma: no cover - datetime caps it
        raise ArenaFormatError(f"UTC offset out of range: {offset!r}")
    return (value.replace(tzinfo=None) - _EPOCH) // _US, seconds


def _decode_datetime(micros: int, tz_seconds: int) -> datetime:
    value = _EPOCH + micros * _US
    if tz_seconds == TZ_NAIVE:
        return value
    # timezone() returns the interned timezone.utc for a zero offset, so a
    # round-tripped aware datetime compares *and* reprs identically.
    return value.replace(tzinfo=timezone(timedelta(seconds=tz_seconds)))


def _check_range(name: str, value: int, bits: int, *, signed: bool) -> int:
    lo, hi = (-(2 ** (bits - 1)), 2 ** (bits - 1)) if signed else (0, 2**bits)
    if not lo <= value < hi:
        raise ArenaFormatError(f"{name} out of range for the frame: {value}")
    return value


def encode_sessions(
    sessions: Sequence[TcpSession], ruleset_blob: bytes = b""
) -> bytes:
    """Serialize sessions (+ an opaque ruleset blob) into one frame buffer.

    The ruleset blob is opaque bytes to this layer; in practice it is a
    *source-form* ruleset pickle (``Ruleset.__getstate__`` strips derived
    compile state), so the segment stays compact even for 10k-rule scaled
    rulesets — workers recompile once per blob digest and lazily per shard.

    Payloads are deduplicated into the heap; everything else is fixed-width,
    so record ``i`` lives at a computable offset and slices decode without
    touching the rest of the buffer.
    """
    count = len(sessions)
    ruleset_off = _HEADER.size
    table_off = ruleset_off + len(ruleset_blob)
    heap_off = table_off + count * _RECORD.size

    heap = bytearray()
    extents: Dict[bytes, Tuple[int, int]] = {}
    table = bytearray(count * _RECORD.size)
    pack = _RECORD.pack_into
    record_size = _RECORD.size
    for index, session in enumerate(sessions):
        payload = session.payload
        extent = extents.get(payload)
        if extent is None:
            extent = (heap_off + len(heap), len(payload))
            extents[payload] = extent
            heap += payload
        start_us, start_tz = _encode_datetime(session.start)
        if session.end is not None:
            end_us, end_tz = _encode_datetime(session.end)
            flags = _FLAG_HAS_END
        else:
            end_us, end_tz, flags = 0, TZ_NAIVE, 0
        if session.established:
            flags |= _FLAG_ESTABLISHED
        pack(
            table,
            index * record_size,
            _check_range("session_id", session.session_id, 64, signed=True),
            start_us,
            start_tz,
            end_us,
            end_tz,
            flags,
            _check_range("src_ip", session.src_ip, 32, signed=False),
            _check_range("dst_ip", session.dst_ip, 32, signed=False),
            session.src_port,
            session.dst_port,
            extent[0],
            extent[1],
        )

    header = _HEADER.pack(
        MAGIC, VERSION, count, ruleset_off, len(ruleset_blob),
        table_off, heap_off, len(heap),
    )
    return b"".join((header, ruleset_blob, bytes(table), bytes(heap)))


def _read_header(buf) -> Tuple[int, int, int, int, int, int]:
    if len(buf) < _HEADER.size:
        raise ArenaFormatError("buffer too small to be an arena frame")
    magic, version, count, ruleset_off, ruleset_len, table_off, heap_off, heap_len = (
        _HEADER.unpack_from(buf, 0)
    )
    if magic != MAGIC:
        raise ArenaFormatError(f"bad arena magic: {bytes(magic)!r}")
    if version != VERSION:
        raise ArenaFormatError(f"unsupported arena version: {version}")
    # A shared-memory segment may be page-rounded *past* the frame, but a
    # buffer ending short of the declared heap is torn, not decodable.
    if len(buf) < heap_off + heap_len:
        raise ArenaFormatError(
            f"truncated arena frame: {len(buf)} bytes, "
            f"header declares {heap_off + heap_len}"
        )
    return count, ruleset_off, ruleset_len, table_off, heap_off, heap_len


def frame_count(buf) -> int:
    """Number of sessions framed in a buffer produced by
    :func:`encode_sessions`."""
    return _read_header(buf)[0]


def frame_ruleset_blob(buf) -> bytes:
    """The opaque ruleset bytes embedded in the frame (may be empty)."""
    _, ruleset_off, ruleset_len, *_ = _read_header(buf)
    return bytes(memoryview(buf)[ruleset_off : ruleset_off + ruleset_len])


def decode_sessions(
    buf, start: int = 0, stop: Optional[int] = None
) -> List[TcpSession]:
    """Decode frames ``[start, stop)`` back into sessions.

    The buffer is sliced through one ``memoryview`` — only the records and
    payload extents of the requested window are ever materialized.
    """
    count, _, _, table_off, *_ = _read_header(buf)
    if stop is None:
        stop = count
    if not 0 <= start <= stop <= count:
        raise ArenaFormatError(
            f"slice [{start}, {stop}) outside frame count {count}"
        )
    view = memoryview(buf)
    unpack = _RECORD.unpack_from
    record_size = _RECORD.size
    sessions: List[TcpSession] = []
    append = sessions.append
    for index in range(start, stop):
        (
            session_id, start_us, start_tz, end_us, end_tz, flags,
            src_ip, dst_ip, src_port, dst_port, payload_off, payload_len,
        ) = unpack(view, table_off + index * record_size)
        append(
            TcpSession(
                session_id=session_id,
                start=_decode_datetime(start_us, start_tz),
                src_ip=src_ip,
                src_port=src_port,
                dst_ip=dst_ip,
                dst_port=dst_port,
                payload=bytes(view[payload_off : payload_off + payload_len]),
                end=(
                    _decode_datetime(end_us, end_tz)
                    if flags & _FLAG_HAS_END
                    else None
                ),
                established=bool(flags & _FLAG_ESTABLISHED),
            )
        )
    return sessions


def _fresh_name() -> str:
    return f"{ARENA_NAME_PREFIX}{os.getpid()}-{os.urandom(6).hex()}"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the attaching process's resource tracker from co-owning the
    segment.

    Only needed where workers run their *own* tracker (spawn-only
    platforms): before 3.13, attach registers the name there, and that
    tracker would unlink it (with a leak warning) when the worker exits
    even though the creator still owns it.  Fork children share the
    creator's tracker, where the duplicate registration is a set no-op
    balanced by the creator's eventual ``unlink`` — untracking there would
    instead *remove the creator's entry* and turn the unlink into tracker
    noise.
    """
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return
    try:  # pragma: no cover - spawn-only platforms
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _finalize_segment(
    shm: shared_memory.SharedMemory, owner: bool, owner_pid: int
) -> None:
    try:
        shm.close()
    except OSError:  # pragma: no cover - already closed
        pass
    # Forked children inherit the parent's arena object (and this
    # finalizer); only the creating process may destroy the name.
    if owner and os.getpid() == owner_pid:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class SessionArena:
    """One shared-memory segment holding a framed session archive.

    Create with :meth:`build` (parent, owns the name) or :meth:`attach`
    (workers, close-only).  Cleanup is automatic — a ``weakref.finalize``
    finalizer closes (and, for the owner, unlinks) the segment on garbage
    collection or interpreter exit — but callers on the happy path should
    still call :meth:`close` / :meth:`close_and_unlink` promptly.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, *, owner: bool
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._owner = owner
        self._count, _, _, _, self._heap_off, self._heap_len = _read_header(
            shm.buf
        )
        self._finalizer = weakref.finalize(
            self, _finalize_segment, shm, owner, os.getpid()
        )

    @classmethod
    def build(
        cls,
        sessions: Sequence[TcpSession],
        *,
        ruleset_blob: bytes = b"",
        name: Optional[str] = None,
    ) -> "SessionArena":
        """Frame ``sessions`` into a fresh owned segment."""
        frame = encode_sessions(sessions, ruleset_blob)
        shm = shared_memory.SharedMemory(
            name=name or _fresh_name(), create=True, size=max(1, len(frame))
        )
        # The segment may be page-rounded past the frame; the header's
        # offsets bound every read, so the tail slack is never decoded.
        shm.buf[: len(frame)] = frame
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SessionArena":
        """Attach to an existing segment by name (close-only)."""
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._require().name

    @property
    def count(self) -> int:
        return self._count

    def __len__(self) -> int:
        return self._count

    @property
    def nbytes(self) -> int:
        """Logical frame size (header through heap end), not the
        page-rounded segment size."""
        return self._heap_off + self._heap_len

    def _require(self) -> shared_memory.SharedMemory:
        if self._shm is None:
            raise ValueError("arena is closed")
        return self._shm

    def sessions(self, start: int = 0, stop: Optional[int] = None) -> List[TcpSession]:
        """Decode the sessions of slice ``[start, stop)``."""
        return decode_sessions(self._require().buf, start, stop)

    def ruleset_blob(self) -> bytes:
        return frame_ruleset_blob(self._require().buf)

    def close(self) -> None:
        """Detach from the segment (workers; owners keep the name alive)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            self._finalizer.detach()
            try:
                shm.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def close_and_unlink(self) -> None:
        """Owner-side teardown: detach and destroy the name."""
        shm, self._shm = self._shm, None
        if shm is not None:
            self._finalizer.detach()
            _finalize_segment(shm, self._owner, os.getpid())

    def __enter__(self) -> "SessionArena":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner:
            self.close_and_unlink()
        else:
            self.close()
