"""Snort rule-text parser.

Parses the classic single-line rule format::

    alert tcp $EXTERNAL_NET any -> $HOME_NET [80,8080] (msg:"..."; \
        flow:to_server,established; content:"${jndi:"; nocase; http_header; \
        pcre:"/\\x24\\x7bjndi/iH"; reference:cve,2021-44228; sid:58722; rev:3;)

Supported option vocabulary is the subset the study's synthetic ruleset
uses (see :mod:`repro.nids.rule`); unknown options are preserved in the
rule's metadata rather than rejected, mirroring how an engine skips
non-detection options it does not implement.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.nids.rule import (
    ContentMatch,
    HttpBuffer,
    IsDataAt,
    PcreMatch,
    PortSpec,
    Rule,
    SizeBound,
)


class RuleParseError(ValueError):
    """Raised when rule text cannot be parsed."""


# An address or port field is either a bracketed list — which may contain
# spaces, e.g. ``[80, 8080]``, valid Snort — or a single bare token.
_HEADER_FIELD = r"(?:\[[^\]]*\]|\S+)"

_HEADER_RE = re.compile(
    r"^\s*(?P<action>\w+)\s+(?P<proto>\w+)"
    rf"\s+(?P<src>{_HEADER_FIELD})\s+(?P<sports>{_HEADER_FIELD})\s+"
    rf"(?P<dir>->|<>)\s+(?P<dst>{_HEADER_FIELD})\s+(?P<dports>{_HEADER_FIELD})"
    r"\s*\((?P<options>.*)\)\s*$",
    re.DOTALL,
)

#: pcre trailing-flag characters -> (re flag, buffer)
_PCRE_FLAGS = {
    "i": (re.IGNORECASE, None),
    "s": (re.DOTALL, None),
    "m": (re.MULTILINE, None),
    "U": (0, HttpBuffer.HTTP_URI),
    "H": (0, HttpBuffer.HTTP_HEADER),
    "C": (0, HttpBuffer.HTTP_COOKIE),
    "P": (0, HttpBuffer.HTTP_CLIENT_BODY),
    "M": (0, HttpBuffer.HTTP_METHOD),
}

def _split_options(text: str) -> List[str]:
    """Split the option block on semicolons, respecting quoted strings."""
    options: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == ";" and not in_quotes:
            option = "".join(current).strip()
            if option:
                options.append(option)
            current = []
            continue
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        options.append(tail)
    if in_quotes:
        raise RuleParseError("unterminated quoted string in options")
    return options


def _content_byte(char: str) -> int:
    """One content character as a byte (latin-1); raises on non-latin-1.

    Content patterns are byte strings: characters U+0000..U+00FF map to
    their latin-1 byte, anything beyond has no single-byte encoding and
    must be written as a ``|hex|`` run instead of crashing the parser with
    a bare ``bytearray`` range error.
    """
    code = ord(char)
    if code > 0xFF:
        raise RuleParseError(
            f"non-latin-1 character {char!r} in content pattern; "
            "encode it as a |hex| run (e.g. UTF-8 bytes)"
        )
    return code


def _decode_content(text: str) -> bytes:
    """Decode a quoted content pattern with Snort escapes and |hex| runs."""
    if not (text.startswith('"') and text.endswith('"') and len(text) >= 2):
        raise RuleParseError(f"content pattern must be quoted: {text!r}")
    body = text[1:-1]
    out = bytearray()
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\":
            if index + 1 >= len(body):
                raise RuleParseError("dangling escape in content")
            out.append(_content_byte(body[index + 1]))
            index += 2
        elif char == "|":
            end = body.find("|", index + 1)
            if end < 0:
                raise RuleParseError("unterminated hex run in content")
            hex_text = body[index + 1 : end].replace(" ", "")
            if len(hex_text) % 2:
                raise RuleParseError(f"odd-length hex run: {hex_text!r}")
            out.extend(bytes.fromhex(hex_text))
            index = end + 1
        else:
            out.append(_content_byte(char))
            index += 1
    return bytes(out)


def encode_content(pattern: bytes) -> str:
    """Render raw bytes as a Snort content body (inverse of
    :func:`_decode_content`): printable ASCII stays literal, everything
    else — including the quote/semicolon/backslash/pipe specials — becomes
    a ``|hex|`` run.  Shared by the rule generators so every rendered rule
    round-trips through :func:`parse_rule`."""
    out: List[str] = []
    hex_run: List[str] = []

    def flush_hex() -> None:
        if hex_run:
            out.append("|" + " ".join(hex_run) + "|")
            hex_run.clear()

    for byte in pattern:
        if 0x20 <= byte < 0x7F and chr(byte) not in ('"', ";", "\\", "|"):
            flush_hex()
            out.append(chr(byte))
        else:
            hex_run.append(f"{byte:02X}")
    flush_hex()
    return "".join(out)


def _int_option(key: str, value: str) -> int:
    """Parse an integer option value; malformed input is a parse error
    (with the option named), not a bare ``ValueError`` traceback."""
    try:
        return int(value)
    except ValueError:
        raise RuleParseError(
            f"option {key} requires an integer, got {value!r}"
        ) from None


def _parse_pcre(value: str) -> PcreMatch:
    value = value.strip()
    negated = value.startswith("!")
    if negated:
        value = value[1:].strip()
    if value.startswith('"') and value.endswith('"'):
        value = value[1:-1]
    if not value.startswith("/"):
        raise RuleParseError(f"pcre must start with '/': {value!r}")
    closing = value.rfind("/")
    if closing == 0:
        raise RuleParseError(f"unterminated pcre: {value!r}")
    pattern = value[1:closing]
    flags = 0
    buffer = HttpBuffer.RAW
    for flag_char in value[closing + 1 :]:
        if flag_char not in _PCRE_FLAGS:
            raise RuleParseError(f"unsupported pcre flag {flag_char!r}")
        re_flag, flag_buffer = _PCRE_FLAGS[flag_char]
        flags |= re_flag
        if flag_buffer is not None:
            buffer = flag_buffer
    return PcreMatch(pattern=pattern, flags=flags, buffer=buffer, negated=negated)


def parse_rule(text: str) -> Rule:
    """Parse one rule; raises :class:`RuleParseError` on malformed input.

    Every parse failure is a :class:`RuleParseError` carrying the offending
    rule's head — at generated-ruleset volume, an error without rule context
    is undebuggable — never a bare ``ValueError`` from an ``int()`` or
    ``bytearray`` internal.
    """
    stripped = text.strip()
    if not stripped or stripped.startswith("#"):
        raise RuleParseError("empty or comment line")
    try:
        return _parse_stripped(stripped)
    except RuleParseError as error:
        message = str(error)
        if "(rule: " in message:  # pragma: no cover - already annotated
            raise
        raise RuleParseError(f"{message} (rule: {stripped[:80]!r})") from None


def _parse_stripped(stripped: str) -> Rule:
    match = _HEADER_RE.match(stripped)
    if match is None:
        raise RuleParseError("unparseable rule header")

    buffer_modifiers = {
        "http_uri": HttpBuffer.HTTP_URI,
        "http_header": HttpBuffer.HTTP_HEADER,
        "http_cookie": HttpBuffer.HTTP_COOKIE,
        "http_client_body": HttpBuffer.HTTP_CLIENT_BODY,
        "http_method": HttpBuffer.HTTP_METHOD,
    }

    options: List = []
    msg = ""
    sid: Optional[int] = None
    rev = 1
    references: List[Tuple[str, str]] = []
    metadata: Dict[str, str] = {}
    flow_to_server = False

    def last_content() -> ContentMatch:
        for option in reversed(options):
            if isinstance(option, ContentMatch):
                return option
        raise RuleParseError("modifier before any content option")

    def replace_last_content(updated: ContentMatch) -> None:
        for index in range(len(options) - 1, -1, -1):
            if isinstance(options[index], ContentMatch):
                options[index] = updated
                return
        raise RuleParseError("modifier before any content option")

    import dataclasses

    for option_text in _split_options(match.group("options")):
        key, colon, value = option_text.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "msg":
            # Strip exactly one matched surrounding quote pair: stripping
            # *all* quote characters mangles messages with embedded or
            # doubled quotes (e.g. ``""quoted""``).
            if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
                msg = value[1:-1]
            else:
                msg = value
        elif key == "content":
            negated = value.startswith("!")
            if negated:
                value = value[1:].strip()
            options.append(
                ContentMatch(pattern=_decode_content(value), negated=negated)
            )
        elif key == "pcre":
            options.append(_parse_pcre(value))
        elif key == "nocase":
            replace_last_content(dataclasses.replace(last_content(), nocase=True))
        elif key == "fast_pattern":
            replace_last_content(
                dataclasses.replace(last_content(), fast_pattern=True)
            )
        elif key in buffer_modifiers:
            target = buffer_modifiers[key]
            replace_last_content(
                dataclasses.replace(last_content(), buffer=target)
            )
        elif key in ("offset", "depth", "distance", "within"):
            replace_last_content(
                dataclasses.replace(
                    last_content(), **{key: _int_option(key, value)}
                )
            )
        elif key in ("urilen", "dsize"):
            try:
                options.append(SizeBound.parse(key, value))
            except RuleParseError:
                raise
            except ValueError as error:
                raise RuleParseError(
                    f"bad {key} option {value!r}: {error}"
                ) from None
        elif key == "isdataat":
            try:
                options.append(IsDataAt.parse(value))
            except RuleParseError:
                raise
            except ValueError as error:
                raise RuleParseError(
                    f"bad isdataat option {value!r}: {error}"
                ) from None
        elif key == "sid":
            sid = _int_option(key, value)
        elif key == "rev":
            rev = _int_option(key, value)
        elif key == "reference":
            scheme, _, ref_value = value.partition(",")
            references.append((scheme.strip(), ref_value.strip()))
        elif key == "flow":
            flow_to_server = "to_server" in value
        elif key == "metadata":
            for piece in value.split(","):
                piece = piece.strip()
                if not piece:
                    continue
                meta_key, _, meta_value = piece.partition(" ")
                metadata[meta_key] = meta_value
        elif not colon:
            metadata[key] = ""
        else:
            metadata[key] = value

    if sid is None:
        raise RuleParseError("rule missing sid")

    def _ports(which: str, text_value: str) -> PortSpec:
        try:
            return PortSpec.parse(text_value)
        except RuleParseError:
            raise
        except ValueError as error:
            raise RuleParseError(
                f"bad {which} port spec {text_value!r}: {error}"
            ) from None

    return Rule(
        action=match.group("action"),
        protocol=match.group("proto"),
        src=match.group("src"),
        src_ports=_ports("source", match.group("sports")),
        dst=match.group("dst"),
        dst_ports=_ports("destination", match.group("dports")),
        msg=msg,
        sid=sid,
        rev=rev,
        options=tuple(options),
        references=tuple(references),
        metadata=metadata,
        flow_to_server=flow_to_server,
    )


def parse_rules(lines: Iterable[str]) -> List[Rule]:
    """Parse a rule file's lines, skipping blanks and comments."""
    rules: List[Rule] = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped))
    return rules
