"""Detection engine: post-facto evaluation of a ruleset over an archive.

This is the reproduction of the study's Snort pass — the entire stored
traffic archive is scanned with the full (retrospective) ruleset, and each
session contributes at most one alert (its earliest-published matching
signature).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.net.session import TcpSession
from repro.nids.ruleset import Alert, Ruleset


@dataclass
class DetectionStats:
    """Counters from one engine pass."""

    sessions_scanned: int = 0
    sessions_alerted: int = 0
    pre_publication_alerts: int = 0
    alerts_by_sid: Dict[int, int] = field(default_factory=dict)

    @property
    def alert_rate(self) -> float:
        if self.sessions_scanned == 0:
            return 0.0
        return self.sessions_alerted / self.sessions_scanned


class DetectionEngine:
    """Run a :class:`Ruleset` over session streams."""

    def __init__(self, ruleset: Ruleset) -> None:
        self.ruleset = ruleset
        self.stats = DetectionStats()

    def scan(self, sessions: Iterable[TcpSession]) -> List[Alert]:
        """Scan sessions; returns retained alerts in session order."""
        alerts: List[Alert] = []
        for session in sessions:
            self.stats.sessions_scanned += 1
            alert = self.ruleset.match_session(session)
            if alert is None:
                continue
            self.stats.sessions_alerted += 1
            if alert.pre_publication:
                self.stats.pre_publication_alerts += 1
            self.stats.alerts_by_sid[alert.sid] = (
                self.stats.alerts_by_sid.get(alert.sid, 0) + 1
            )
            alerts.append(alert)
        return alerts

    def scan_one(self, session: TcpSession) -> Optional[Alert]:
        """Scan a single session (updates stats identically)."""
        results = self.scan([session])
        return results[0] if results else None
