"""Detection engine: post-facto evaluation of a ruleset over an archive.

This is the reproduction of the study's Snort pass — the entire stored
traffic archive is scanned with the full (retrospective) ruleset, and each
session contributes at most one alert (its earliest-published matching
signature).

The serial scan is a stream: :func:`scan_stream` consumes sessions one at a
time without materializing per-session candidate lists, memoises the match
outcome per distinct payload (port-insensitive matching makes the winning
rule a pure function of the payload bytes; archives repeat payloads
heavily), and accumulates a :class:`ScanTelemetry` describing where the
scan spent its time.

The pass is embarrassingly parallel: ``workers > 1`` partitions the archive
into contiguous chunks and evaluates them in a process pool
(:mod:`repro.nids.parallel`), each worker holding its own compiled ruleset.
Alerts, statistics, and telemetry are merged in session order, so the
parallel scan is indistinguishable from the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.session import TcpSession
from repro.nids import matcher
from repro.nids.ruleset import Alert, Ruleset

@dataclass
class ScanTelemetry:
    """Where a scan spent its work, threaded through serial and parallel
    paths into :class:`DetectionStats`.

    The stage counters (``prefilter_hits``, ``candidates_*``, per-stage
    seconds, match-cache counters) are populated by the ``regex`` engine's
    ordered fast path; the ``aho`` reference path reports only the stream
    totals (sessions, payload bytes, wall time).
    """

    engine: str = "regex"
    sessions: int = 0
    payload_bytes: int = 0
    #: Payloads (memo misses) where the prefilter nominated >= 1 candidate.
    prefilter_hits: int = 0
    candidates_nominated: int = 0
    candidates_evaluated: int = 0
    match_cache_hits: int = 0
    match_cache_misses: int = 0
    prefilter_seconds: float = 0.0
    eval_seconds: float = 0.0
    scan_seconds: float = 0.0
    #: Elapsed time as the *caller* experienced it.  For a serial scan this
    #: equals ``scan_seconds``; for a parallel scan it is measured by the
    #: parent around the whole pool pass, while ``scan_seconds`` (summed
    #: across workers — see :attr:`cpu_seconds`) counts concurrent work and
    #: can legitimately exceed it.  Never report summed worker clocks as
    #: elapsed time.
    wall_seconds: float = 0.0
    #: Recovery counters, populated only by the fault-tolerant parallel
    #: path (:func:`repro.nids.parallel.parallel_scan`): chunk submissions
    #: that were retries, pool generations lost to worker death, chunks
    #: that failed at least once but were recovered in the pool, chunks
    #: that fell back to the in-process serial scan, and chunks served
    #: from the on-disk checkpoint store instead of being rescanned.
    chunk_retries: int = 0
    pool_respawns: int = 0
    recovered_chunks: int = 0
    poison_chunks: int = 0
    checkpoint_hits: int = 0
    #: Transfer-plane counters, also parallel-path only: bytes of the
    #: shared-memory arena the workers scanned from, time spent building
    #: it, time spent on the remaining cross-process transfer work
    #: (ruleset pickling, result decode/merge), whether the scan reused an
    #: already-warm worker pool instead of forking a fresh one, and
    #: whether a parallel *request* was served serially because the stream
    #: fell below the break-even threshold.
    arena_bytes: int = 0
    arena_build_seconds: float = 0.0
    transfer_seconds: float = 0.0
    pool_reuses: int = 0
    fallback_serial: int = 0
    #: Sharded-prefilter counters (zero when the prefilter is monolithic):
    #: shard count of the widest engine seen (merged via ``max``, since
    #: every worker compiles the *same* partition), shard compiles actually
    #: performed with their compile time (summed — lazy compilation means a
    #: worker only pays for shards its payloads touched), and shard-engine
    #: searches issued.
    prefilter_shards: int = 0
    shards_compiled: int = 0
    shard_compile_seconds: float = 0.0
    shard_searches: int = 0
    #: Snapshot of the pcre compile cache (hits, misses, maxsize, currsize)
    #: taken when the scan finishes — eviction churn shows up as misses
    #: exceeding the distinct-pattern count.
    pcre_cache: Optional[Tuple[int, int, Optional[int], int]] = None

    @property
    def cpu_seconds(self) -> float:
        """Total scanning work summed across workers (= ``scan_seconds``)."""
        return self.scan_seconds

    @property
    def utilization(self) -> float:
        """Parallel speed-up actually realised: cpu seconds per wall second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cpu_seconds / self.wall_seconds

    @property
    def prefilter_hit_ratio(self) -> float:
        """Fraction of prefiltered payloads that nominated candidates."""
        if self.match_cache_misses == 0:
            return 0.0
        return self.prefilter_hits / self.match_cache_misses

    @property
    def match_cache_hit_ratio(self) -> float:
        probes = self.match_cache_hits + self.match_cache_misses
        if probes == 0:
            return 0.0
        return self.match_cache_hits / probes

    def merge(self, other: "ScanTelemetry") -> None:
        """Fold another scan's counters into this one (parallel workers)."""
        self.sessions += other.sessions
        self.payload_bytes += other.payload_bytes
        self.prefilter_hits += other.prefilter_hits
        self.candidates_nominated += other.candidates_nominated
        self.candidates_evaluated += other.candidates_evaluated
        self.match_cache_hits += other.match_cache_hits
        self.match_cache_misses += other.match_cache_misses
        self.prefilter_seconds += other.prefilter_seconds
        self.eval_seconds += other.eval_seconds
        self.scan_seconds += other.scan_seconds
        # Summing is only correct for sequential merges (a serial engine
        # accumulating passes); the parallel scan overwrites this with its
        # own parent-measured elapsed time after merging its workers.
        self.wall_seconds += other.wall_seconds
        self.chunk_retries += other.chunk_retries
        self.pool_respawns += other.pool_respawns
        self.recovered_chunks += other.recovered_chunks
        self.poison_chunks += other.poison_chunks
        self.checkpoint_hits += other.checkpoint_hits
        self.arena_bytes += other.arena_bytes
        self.arena_build_seconds += other.arena_build_seconds
        self.transfer_seconds += other.transfer_seconds
        self.pool_reuses += other.pool_reuses
        self.fallback_serial += other.fallback_serial
        # Shard count is a property of the compiled partition, not work
        # done: identical in every worker, so max (not sum) merges it.
        self.prefilter_shards = max(self.prefilter_shards, other.prefilter_shards)
        self.shards_compiled += other.shards_compiled
        self.shard_compile_seconds += other.shard_compile_seconds
        self.shard_searches += other.shard_searches
        if other.pcre_cache is not None:
            self.pcre_cache = other.pcre_cache

    def snapshot_pcre_cache(self) -> None:
        info = matcher._compiled.cache_info()
        self.pcre_cache = (info.hits, info.misses, info.maxsize, info.currsize)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (benchmark records, debugging dumps)."""
        return {
            "engine": self.engine,
            "sessions": self.sessions,
            "payload_bytes": self.payload_bytes,
            "prefilter_hits": self.prefilter_hits,
            "prefilter_hit_ratio": self.prefilter_hit_ratio,
            "candidates_nominated": self.candidates_nominated,
            "candidates_evaluated": self.candidates_evaluated,
            "match_cache_hits": self.match_cache_hits,
            "match_cache_misses": self.match_cache_misses,
            "match_cache_hit_ratio": self.match_cache_hit_ratio,
            "prefilter_seconds": self.prefilter_seconds,
            "eval_seconds": self.eval_seconds,
            "scan_seconds": self.scan_seconds,
            "cpu_seconds": self.cpu_seconds,
            "wall_seconds": self.wall_seconds,
            "utilization": self.utilization,
            "chunk_retries": self.chunk_retries,
            "pool_respawns": self.pool_respawns,
            "recovered_chunks": self.recovered_chunks,
            "poison_chunks": self.poison_chunks,
            "checkpoint_hits": self.checkpoint_hits,
            "arena_bytes": self.arena_bytes,
            "arena_build_seconds": self.arena_build_seconds,
            "transfer_seconds": self.transfer_seconds,
            "pool_reuses": self.pool_reuses,
            "fallback_serial": self.fallback_serial,
            "prefilter_shards": self.prefilter_shards,
            "shards_compiled": self.shards_compiled,
            "shard_compile_seconds": self.shard_compile_seconds,
            "shard_searches": self.shard_searches,
            "pcre_cache": self.pcre_cache,
        }

    #: Counter fields restored by :meth:`from_dict` (derived ratios and the
    #: engine label are handled separately).
    _COUNTER_FIELDS = (
        "sessions",
        "payload_bytes",
        "prefilter_hits",
        "candidates_nominated",
        "candidates_evaluated",
        "match_cache_hits",
        "match_cache_misses",
        "prefilter_seconds",
        "eval_seconds",
        "scan_seconds",
        "wall_seconds",
        "chunk_retries",
        "pool_respawns",
        "recovered_chunks",
        "poison_chunks",
        "checkpoint_hits",
        "arena_bytes",
        "arena_build_seconds",
        "transfer_seconds",
        "pool_reuses",
        "fallback_serial",
        "prefilter_shards",
        "shards_compiled",
        "shard_compile_seconds",
        "shard_searches",
    )

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "ScanTelemetry":
        """Rebuild a telemetry from :meth:`as_dict` output (checkpoints)."""
        telemetry = cls(engine=str(record.get("engine", "regex")))
        for name in cls._COUNTER_FIELDS:
            value = record.get(name)
            if value is not None:
                setattr(telemetry, name, value)
        pcre = record.get("pcre_cache")
        if pcre is not None:
            telemetry.pcre_cache = tuple(pcre)  # type: ignore[assignment]
        return telemetry


@dataclass
class DetectionStats:
    """Counters from one engine pass.

    ``telemetry`` is diagnostic (timings vary run to run) and excluded from
    equality so parallel and serial passes still compare equal.
    """

    sessions_scanned: int = 0
    sessions_alerted: int = 0
    pre_publication_alerts: int = 0
    alerts_by_sid: Dict[int, int] = field(default_factory=dict)
    telemetry: ScanTelemetry = field(default_factory=ScanTelemetry, compare=False)

    @property
    def alert_rate(self) -> float:
        if self.sessions_scanned == 0:
            return 0.0
        return self.sessions_alerted / self.sessions_scanned

    def record(self, alert: Alert) -> None:
        """Account one retained alert."""
        self.sessions_alerted += 1
        if alert.pre_publication:
            self.pre_publication_alerts += 1
        self.alerts_by_sid[alert.sid] = self.alerts_by_sid.get(alert.sid, 0) + 1

    def replay(self, alerts: Iterable[Alert], *, sessions_scanned: int) -> None:
        """Re-derive counters from an already-scanned alert stream.

        Used wherever alerts arrive pre-computed — the merged output of a
        parallel pass, or a streaming consumer folding in one window at a
        time — and must be accounted exactly as a serial :meth:`record`
        loop would (including ``alerts_by_sid`` insertion order).
        """
        self.sessions_scanned += sessions_scanned
        for alert in alerts:
            self.record(alert)


def scan_stream(
    ruleset: Ruleset, sessions: Iterable[TcpSession]
) -> Tuple[List[Alert], int, ScanTelemetry]:
    """Scan a session stream; the shared core of serial and worker scans.

    Returns ``(alerts, sessions_scanned, telemetry)`` with alerts in stream
    order.  With the ``regex`` engine, match outcomes are memoised per
    payload (plus the port pair when the ruleset is port-sensitive, since
    ports then join the match decision); the ``aho`` engine runs the
    reference per-session loop untouched.
    """
    ruleset._ensure_compiled()
    telemetry = ScanTelemetry(engine=ruleset.prefilter_engine)
    # Shard counters are cumulative on the ruleset (it outlives scans and is
    # digest-cached in workers), so the stream records the *delta* — deltas
    # sum correctly when parallel workers merge their telemetry.
    shard_stats_before = ruleset.prefilter_stats()
    started = perf_counter()
    items = sessions if isinstance(sessions, list) else list(sessions)
    scanned = len(items)

    if ruleset.prefilter_engine == "aho":
        alerts: List[Alert] = []
        match_session = ruleset.match_session
        for session in items:
            alert = match_session(session)
            if alert is not None:
                alerts.append(alert)
    else:
        match_payload = ruleset._match_payload
        alert_for = ruleset._alert_for
        port_sensitive = not ruleset.port_insensitive
        # Pass 1: resolve each distinct payload (plus the port pair when the
        # ruleset is port-sensitive, since ports then join the match
        # decision) to its winning rule index once.  The dedup itself is a
        # C-speed set comprehension rather than a per-session probe loop.
        memo: Dict[object, Optional[int]] = {}
        prefilter_hits = nominated = evaluated = 0
        prefilter_seconds = eval_seconds = 0.0
        if port_sensitive:
            distinct = {
                (session.payload, session.src_port, session.dst_port)
                for session in items
                if session.payload
            }
            probes = sum(1 for session in items if session.payload)
            for key in distinct:
                payload, src_port, dst_port = key
                winner, hit, n_nominated, n_evaluated, t_prefilter, t_eval = (
                    match_payload(payload, src_port=src_port, dst_port=dst_port)
                )
                memo[key] = winner
                if hit:
                    prefilter_hits += 1
                nominated += n_nominated
                evaluated += n_evaluated
                prefilter_seconds += t_prefilter
                eval_seconds += t_eval
        else:
            payloads = {session.payload for session in items}
            payloads.discard(b"")
            probes = scanned - sum(
                1 for session in items if not session.payload
            )
            (
                memo,
                prefilter_hits,
                nominated,
                evaluated,
                prefilter_seconds,
                eval_seconds,
            ) = ruleset.match_payloads(payloads)
        # Pass 2: emit alerts in stream order.  Empty payloads miss the memo
        # and fall out as None, same as a no-match.
        memo_get = memo.get
        if port_sensitive:
            alerts = [
                alert_for(winner, session)
                for session in items
                if (
                    winner := memo_get(
                        (session.payload, session.src_port, session.dst_port)
                    )
                )
                is not None
            ]
        else:
            alerts = [
                alert_for(winner, session)
                for session in items
                if (winner := memo_get(session.payload)) is not None
            ]
        telemetry.match_cache_misses = len(memo)
        telemetry.match_cache_hits = probes - len(memo)
        telemetry.prefilter_hits = prefilter_hits
        telemetry.candidates_nominated = nominated
        telemetry.candidates_evaluated = evaluated
        telemetry.prefilter_seconds = prefilter_seconds
        telemetry.eval_seconds = eval_seconds

    telemetry.sessions = scanned
    telemetry.payload_bytes = sum(len(session.payload) for session in items)
    telemetry.scan_seconds = perf_counter() - started
    telemetry.wall_seconds = telemetry.scan_seconds
    shard_stats = ruleset.prefilter_stats()
    telemetry.prefilter_shards = int(shard_stats["prefilter_shards"])
    telemetry.shards_compiled = int(
        shard_stats["shards_compiled"] - shard_stats_before["shards_compiled"]
    )
    telemetry.shard_compile_seconds = (
        shard_stats["shard_compile_seconds"]
        - shard_stats_before["shard_compile_seconds"]
    )
    telemetry.shard_searches = int(
        shard_stats["shard_searches"] - shard_stats_before["shard_searches"]
    )
    telemetry.snapshot_pcre_cache()
    return alerts, scanned, telemetry


class DetectionEngine:
    """Run a :class:`Ruleset` over session streams.

    ``workers`` selects the scan strategy: 1 (the default) scans in-process;
    N > 1 scans in N worker processes with identical results.
    ``chunk_size`` overrides the per-task partition size for parallel scans
    (defaults to an even split across the pool).

    ``checkpoint_store`` (a :class:`repro.cache.CheckpointStore`) together
    with ``checkpoint_key`` enables per-chunk crash checkpoints on the
    parallel path: completed chunks spill to disk as they finish, and a
    killed scan rescans only the missing chunks on the next run.  The
    caller owns deleting the checkpoints once the surrounding run succeeds.

    ``tracer`` (a :class:`repro.obs.Tracer`, optional) records per-chunk
    spans on the parallel path as chunk results arrive — workers cannot
    share the parent's tracer, so their timings attach as pre-measured
    child spans.

    ``transfer`` and ``threshold`` tune the parallel data plane (see
    :func:`repro.nids.parallel.parallel_scan`): the transfer plane
    (``arena`` default / ``pickle`` legacy) and the break-even stream size
    below which a parallel request runs serially anyway (``threshold=0``
    forces the pool on).  Both default to their environment knobs
    (``REPRO_TRANSFER``, ``REPRO_PARALLEL_THRESHOLD``).
    """

    def __init__(
        self,
        ruleset: Ruleset,
        *,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        checkpoint_store=None,
        checkpoint_key: Optional[str] = None,
        tracer=None,
        transfer: Optional[str] = None,
        threshold: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.ruleset = ruleset
        self.workers = workers
        self.chunk_size = chunk_size
        self.checkpoint_store = checkpoint_store
        self.checkpoint_key = checkpoint_key
        self.tracer = tracer
        self.transfer = transfer
        self.threshold = threshold
        self.stats = DetectionStats(
            telemetry=ScanTelemetry(engine=ruleset.prefilter_engine)
        )

    def scan(self, sessions: Iterable[TcpSession]) -> List[Alert]:
        """Scan sessions; returns retained alerts in session order."""
        if self.workers == 1:
            return self._scan_serial(sessions)
        from repro.nids.parallel import parallel_scan

        alerts, scanned, telemetry = parallel_scan(
            self.ruleset,
            sessions,
            workers=self.workers,
            chunk_size=self.chunk_size,
            checkpoint_store=self.checkpoint_store,
            checkpoint_key=self.checkpoint_key,
            tracer=self.tracer,
            transfer=self.transfer,
            threshold=self.threshold,
        )
        # Re-derive the counters from the merged alert stream so the stats
        # (including alerts_by_sid insertion order) match a serial pass.
        self.stats.replay(alerts, sessions_scanned=scanned)
        self.stats.telemetry.merge(telemetry)
        return alerts

    def _scan_serial(self, sessions: Iterable[TcpSession]) -> List[Alert]:
        alerts, scanned, telemetry = scan_stream(self.ruleset, sessions)
        self.stats.replay(alerts, sessions_scanned=scanned)
        self.stats.telemetry.merge(telemetry)
        return alerts

    def scan_one(self, session: TcpSession) -> Optional[Alert]:
        """Scan a single session (updates stats identically)."""
        results = self._scan_serial([session])
        return results[0] if results else None
