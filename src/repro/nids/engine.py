"""Detection engine: post-facto evaluation of a ruleset over an archive.

This is the reproduction of the study's Snort pass — the entire stored
traffic archive is scanned with the full (retrospective) ruleset, and each
session contributes at most one alert (its earliest-published matching
signature).

The pass is embarrassingly parallel: ``workers > 1`` partitions the archive
into contiguous chunks and evaluates them in a process pool
(:mod:`repro.nids.parallel`), each worker holding its own compiled ruleset.
Alerts and statistics are merged in session order, so the parallel scan is
indistinguishable from the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.net.session import TcpSession
from repro.nids.ruleset import Alert, Ruleset


@dataclass
class DetectionStats:
    """Counters from one engine pass."""

    sessions_scanned: int = 0
    sessions_alerted: int = 0
    pre_publication_alerts: int = 0
    alerts_by_sid: Dict[int, int] = field(default_factory=dict)

    @property
    def alert_rate(self) -> float:
        if self.sessions_scanned == 0:
            return 0.0
        return self.sessions_alerted / self.sessions_scanned

    def record(self, alert: Alert) -> None:
        """Account one retained alert."""
        self.sessions_alerted += 1
        if alert.pre_publication:
            self.pre_publication_alerts += 1
        self.alerts_by_sid[alert.sid] = self.alerts_by_sid.get(alert.sid, 0) + 1


class DetectionEngine:
    """Run a :class:`Ruleset` over session streams.

    ``workers`` selects the scan strategy: 1 (the default) scans in-process;
    N > 1 scans in N worker processes with identical results.
    ``chunk_size`` overrides the per-task partition size for parallel scans
    (defaults to an even split across the pool).
    """

    def __init__(
        self,
        ruleset: Ruleset,
        *,
        workers: int = 1,
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.ruleset = ruleset
        self.workers = workers
        self.chunk_size = chunk_size
        self.stats = DetectionStats()

    def scan(self, sessions: Iterable[TcpSession]) -> List[Alert]:
        """Scan sessions; returns retained alerts in session order."""
        if self.workers == 1:
            return self._scan_serial(sessions)
        from repro.nids.parallel import parallel_scan

        alerts, scanned = parallel_scan(
            self.ruleset,
            sessions,
            workers=self.workers,
            chunk_size=self.chunk_size,
        )
        # Re-derive the counters from the merged alert stream so the stats
        # (including alerts_by_sid insertion order) match a serial pass.
        self.stats.sessions_scanned += scanned
        for alert in alerts:
            self.stats.record(alert)
        return alerts

    def _scan_serial(self, sessions: Iterable[TcpSession]) -> List[Alert]:
        alerts: List[Alert] = []
        for session in sessions:
            self.stats.sessions_scanned += 1
            alert = self.ruleset.match_session(session)
            if alert is None:
                continue
            self.stats.record(alert)
            alerts.append(alert)
        return alerts

    def scan_one(self, session: TcpSession) -> Optional[Alert]:
        """Scan a single session (updates stats identically)."""
        results = self._scan_serial([session])
        return results[0] if results else None
