"""Snort-compatible network intrusion detection subsystem.

Implements the subset of the Snort rule language the study depends on:
``content`` matches (with ``nocase``/``depth``/``offset``/``distance``/
``within`` and hex escapes), ``pcre``, HTTP sticky buffers (``http_uri``,
``http_header``, ``http_cookie``, ``http_client_body``, ``http_method``),
port constraints, and rule metadata (``sid``, ``rev``, ``msg``,
``reference:cve``).

Two study-specific behaviours from the paper's methodology (Section 3.1):

* rules are rewritten to be **port-insensitive**, because Talos rules
  constrain ports while scanners target non-standard ports;
* for each TCP session only the **earliest-published** matching signature is
  retained, and signatures are evaluated **post-facto** over the stored
  archive so exploit traffic predating a signature's release is still found.
"""

from repro.nids.rule import (
    ContentMatch,
    HttpBuffer,
    PcreMatch,
    PortSpec,
    Rule,
)
from repro.nids.parser import RuleParseError, parse_rule, parse_rules
from repro.nids.matcher import match_rule
from repro.nids.ruleset import Alert, Ruleset
from repro.nids.engine import DetectionEngine, DetectionStats, ScanTelemetry, scan_stream
from repro.nids.arena import ArenaFormatError, SessionArena
from repro.nids.parallel import parallel_scan
from repro.nids.automaton import AhoCorasick
from repro.nids.prefilter import RegexPrefilter, ShardedPrefilter
from repro.nids.live import LiveDetectionEngine, compare_live_vs_wayback
from repro.nids.lint import LintFinding, lint_rule, lint_rules
from repro.nids.scale import (
    ScaleConfig,
    ScaledRule,
    build_scaled_ruleset,
    generate_scaled,
    generate_texts,
    synthesize_sessions,
    throughput_sweep,
)

__all__ = [
    "ContentMatch",
    "HttpBuffer",
    "PcreMatch",
    "PortSpec",
    "Rule",
    "RuleParseError",
    "parse_rule",
    "parse_rules",
    "match_rule",
    "Alert",
    "Ruleset",
    "DetectionEngine",
    "DetectionStats",
    "ScanTelemetry",
    "scan_stream",
    "parallel_scan",
    "ArenaFormatError",
    "SessionArena",
    "AhoCorasick",
    "RegexPrefilter",
    "ShardedPrefilter",
    "ScaleConfig",
    "ScaledRule",
    "build_scaled_ruleset",
    "generate_scaled",
    "generate_texts",
    "synthesize_sessions",
    "throughput_sweep",
    "LiveDetectionEngine",
    "compare_live_vs_wayback",
    "LintFinding",
    "lint_rule",
    "lint_rules",
]
