"""C-speed fast-pattern prefilter built on CPython's ``re`` engine.

:class:`RegexPrefilter` answers the same question as
:class:`repro.nids.automaton.AhoCorasick` — *which fast patterns occur in
this payload?* — but drives the scan through ``sre``'s compiled C loop
instead of a pure-Python per-byte state machine.  On the study archive this
is the difference between ~60 ns/byte and memory-bandwidth-class scanning,
the same trick real multi-pattern engines (Snort's MPSE, Hyperscan) rely on.

Three non-obvious choices make the regex route both fast and *exact*:

* **Trie-factored alternations.**  A flat ``p1|p2|...|pN`` alternation makes
  ``sre`` try all N branches at every candidate position (measured ~10 us
  per 160-byte payload at N=72 — the "alternation-size cliff").  Factoring
  the patterns into a byte trie (``ab(?:c|d)`` instead of ``abc|abd``) means
  a position is rejected after at most one comparison per distinct leading
  byte.  Patterns are additionally batched into chunks of at most
  ``chunk_size`` so a pathological ruleset cannot produce one enormous
  program.

* **No capture groups.**  Wrapping alternatives in groups (to learn *which*
  pattern matched) disables ``sre``'s branch optimisations — a measured
  ~50x slowdown.  Instead the matched *text* identifies the pattern: every
  trie match spells out exactly one pattern, so ``match.group()`` is a dict
  key into the pattern table.

* **Occurrence closure.**  ``finditer`` reports non-overlapping matches,
  and the greedy trie yields the *longest* pattern at each position.  Two
  completeness fixes recover full Aho-Corasick semantics: (1) every proper
  prefix of a reported pattern that is itself a pattern also occurs at the
  reported position (prefix closure, precomputed); (2) a pattern can hide
  *inside* a reported span — it must then be a substring of the reported
  pattern at offset >= 1, or start with one of its proper suffixes (overlap
  sets, precomputed) — and those few candidates are confirmed with a single
  C-level ``in`` check.  Any pattern occurrence not covered by these cases
  would have been the leftmost match of some ``finditer`` step, hence
  reported.

Matching is case-insensitive exactly like the automaton: patterns are
lowercased at build time and haystacks are lowercased (or declared already
lowered) at search time, so the two engines are drop-in interchangeable and
differentially tested against each other (``tests/test_prefilter.py``).
"""

from __future__ import annotations

import re
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Patterns per compiled chunk.  Far below any hard ``sre`` limit; bounds
#: compile time and keeps each chunk's overlap precomputation quadratic in a
#: small constant.
DEFAULT_CHUNK_SIZE = 256

#: Patterns longer than this are kept out of the trie (deeply nested
#: ``(?:...)`` groups stress ``sre_parse`` recursion) and confirmed with a
#: direct ``in`` scan instead — a single C substring search each.
MAX_TRIE_PATTERN = 64


def _trie_regex(texts: Sequence[bytes]) -> "re.Pattern[bytes]":
    """Compile a byte-trie regex matching the *longest* of ``texts`` at
    each position (greedy descent, so extensions are tried before accepting
    a shorter terminal)."""
    root: Dict = {}
    for text in texts:
        node = root
        for byte in text:
            node = node.setdefault(byte, {})
        node[None] = True  # terminal marker

    def emit(node: Dict) -> bytes:
        terminal = None in node
        branches = [
            re.escape(bytes([byte])) + emit(child)
            for byte, child in sorted(
                (k, v) for k, v in node.items() if k is not None
            )
        ]
        if not branches:
            return b""
        body = b"|".join(branches)
        if terminal:
            return b"(?:" + body + b")?"
        if len(branches) > 1:
            return b"(?:" + body + b")"
        return body

    return re.compile(emit(root))


class _Chunk:
    """One compiled batch of patterns plus its occurrence-closure tables."""

    __slots__ = (
        "regex",
        "ids_by_text",
        "prefix_closure",
        "overlap_texts",
        "any_overlaps",
    )

    def __init__(self, texts: List[bytes], ids_by_text: Dict[bytes, Tuple[int, ...]]) -> None:
        self.regex = _trie_regex(texts)
        self.ids_by_text = ids_by_text
        # Proper prefixes of a matched text that are themselves patterns
        # occur at the same position; fold their ids in up front.
        self.prefix_closure: Dict[bytes, Tuple[int, ...]] = {}
        # Texts that can hide inside (or straddle out of) a reported match
        # of the keyed text; confirmed per haystack with an ``in`` check.
        self.overlap_texts: Dict[bytes, Tuple[bytes, ...]] = {}
        # ``other`` straddles out of ``text`` iff a proper prefix of
        # ``other`` equals a proper suffix of ``text`` (the match then
        # extends past text's end).  Indexing every proper suffix once and
        # probing with other's prefixes costs O(chunk · len) hash lookups,
        # where the former pairwise ``startswith`` sweep was
        # O(chunk² · len) — the difference between a sub-second and a
        # ten-second compile at 10k-rule scale.
        suffix_owners: Dict[bytes, List[bytes]] = {}
        for text in texts:
            for cut in range(1, len(text)):
                suffix_owners.setdefault(text[cut:], []).append(text)
        straddle_for: Dict[bytes, Set[bytes]] = {}
        for other in texts:
            for j in range(1, len(other)):  # proper prefixes: j < len(other)
                owners = suffix_owners.get(other[:j])
                if owners:
                    for text in owners:
                        if text is not other:
                            straddle_for.setdefault(text, set()).add(other)
        empty: Set[bytes] = set()
        for text in texts:
            ids = list(ids_by_text[text])
            interior = text[1:]
            straddlers = straddle_for.get(text, empty)
            overlaps = []
            for other in texts:
                if other is text:
                    continue
                if text.startswith(other):  # proper prefix (texts are unique)
                    ids.extend(ids_by_text[other])
                    continue
                if other in straddlers or other in interior:
                    overlaps.append(other)
            self.prefix_closure[text] = tuple(ids)
            self.overlap_texts[text] = tuple(overlaps)
        self.any_overlaps = any(self.overlap_texts.values())


class RegexPrefilter:
    """A multi-pattern matcher over byte strings, API-compatible with
    :class:`repro.nids.automaton.AhoCorasick`.

    Pattern ids are indices into ``patterns``; duplicate patterns all
    report, empty patterns are rejected — identical contracts to the
    automaton so the two engines can be swapped and differentially tested.
    """

    def __init__(
        self,
        patterns: Sequence[bytes],
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.patterns: List[bytes] = [p.lower() for p in patterns]
        for index, pattern in enumerate(self.patterns):
            if not pattern:
                raise ValueError(f"empty pattern at index {index}")
        ids_by_text: Dict[bytes, List[int]] = {}
        for index, pattern in enumerate(self.patterns):
            ids_by_text.setdefault(pattern, []).append(index)
        frozen = {text: tuple(ids) for text, ids in ids_by_text.items()}

        # Long patterns bypass the trie; each is one C ``in`` scan.
        self._long: List[Tuple[bytes, Tuple[int, ...]]] = []
        short_texts: List[bytes] = []
        for text in frozen:  # first-seen order
            if len(text) > MAX_TRIE_PATTERN:
                self._long.append((text, frozen[text]))
            else:
                short_texts.append(text)

        self._chunks: List[_Chunk] = [
            _Chunk(
                short_texts[start : start + chunk_size],
                frozen,
            )
            for start in range(0, len(short_texts), chunk_size)
        ]

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def pattern_count(self) -> int:
        """Number of compiled patterns (API parity across engines)."""
        return len(self.patterns)

    def search(self, haystack: bytes, *, lowered: bool = False) -> Set[int]:
        """Ids of every pattern occurring in the haystack.

        ``lowered`` declares the haystack already lowercased, skipping the
        ``bytes.lower`` allocation (see :meth:`AhoCorasick.search`).

        The scan itself is ``findall`` — the entire haystack sweep and the
        per-occurrence extraction stay inside the C engine; Python touches
        only the (few) *distinct* matched texts.
        """
        if not lowered:
            haystack = haystack.lower()
        found: Set[int] = set()
        for chunk in self._chunks:
            texts = set(chunk.regex.findall(haystack))
            if not texts:
                continue
            closure = chunk.prefix_closure
            for text in texts:
                found.update(closure[text])
            if chunk.any_overlaps:
                overlap_texts = chunk.overlap_texts
                for text in tuple(texts):
                    for candidate in overlap_texts[text]:
                        if candidate not in texts and candidate in haystack:
                            texts.add(candidate)
                            found.update(closure[candidate])
        for text, ids in self._long:
            if text in haystack:
                found.update(ids)
        return found

    def contains_any(self, haystack: bytes, *, lowered: bool = False) -> bool:
        """Whether any pattern occurs (early-exit variant of search)."""
        if not lowered:
            haystack = haystack.lower()
        for chunk in self._chunks:
            if chunk.regex.search(haystack) is not None:
                return True
        for text, _ in self._long:
            if text in haystack:
                return True
        return False


#: Fast patterns per prefilter shard.  At Snort-realistic rule counts (tens
#: of thousands of distinct fast patterns) one monolithic engine pays its
#: entire compile + closure-precompute cost up front and in one piece;
#: sharding bounds each compile unit and lets it happen lazily, on the
#: first payload that actually searches.
DEFAULT_SHARD_SIZE = 2048


class ShardedPrefilter:
    """Fast patterns partitioned across independently compiled shards.

    API-compatible with :class:`RegexPrefilter` / :class:`AhoCorasick`
    (``search`` / ``contains_any`` over global pattern ids), so
    :class:`repro.nids.ruleset.Ruleset` can swap it in without touching the
    candidate-merge logic: shard hits are translated back to global ids and
    the publication-ordered heap merge downstream is unchanged.

    Shards are **lazy**: each one compiles its engine (``engine_factory``
    over its contiguous pattern slice) on first search, and the compile
    counters (:attr:`shards_compiled`, :attr:`compile_seconds`,
    :attr:`searches`) feed :class:`repro.nids.engine.ScanTelemetry` as
    deltas per scan.  Laziness matters in the workers of a parallel scan:
    a warm worker attaches a digest-cached ruleset whose shards compile
    once, on the first chunk that needs them, and never again for later
    chunks or scans of the same ruleset.
    """

    def __init__(
        self,
        patterns: Sequence[bytes],
        *,
        shard_size: int = DEFAULT_SHARD_SIZE,
        shard_count: Optional[int] = None,
        engine: str = "regex",
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.patterns: List[bytes] = [p.lower() for p in patterns]
        for index, pattern in enumerate(self.patterns):
            if not pattern:
                raise ValueError(f"empty pattern at index {index}")
        if engine not in ("regex", "aho"):
            raise ValueError(f"unknown shard engine {engine!r}")
        self.engine = engine
        total = len(self.patterns)
        if shard_count is not None:
            if shard_count < 1:
                raise ValueError("shard_count must be >= 1")
            shard_size = max(1, -(-total // shard_count))
        self.shard_size = shard_size
        self._bounds: List[Tuple[int, int]] = [
            (start, min(start + shard_size, total))
            for start in range(0, total, shard_size)
        ] or [(0, 0)]
        self._engines: List[Optional[object]] = [None] * len(self._bounds)
        self.shards_compiled = 0
        self.compile_seconds = 0.0
        self.searches = 0

    @property
    def shard_count(self) -> int:
        return len(self._bounds)

    @property
    def pattern_count(self) -> int:
        """Number of compiled patterns (API parity across engines)."""
        return len(self.patterns)

    def _shard(self, index: int):
        """The shard's engine, compiled on first use."""
        engine = self._engines[index]
        if engine is None:
            start, stop = self._bounds[index]
            clock = perf_counter()
            if self.engine == "aho":
                from repro.nids.automaton import AhoCorasick

                engine = AhoCorasick(self.patterns[start:stop])
            else:
                engine = RegexPrefilter(self.patterns[start:stop])
            self.compile_seconds += perf_counter() - clock
            self.shards_compiled += 1
            self._engines[index] = engine
        return engine

    def search(self, haystack: bytes, *, lowered: bool = False) -> Set[int]:
        """Global ids of every pattern occurring in the haystack: the union
        of the per-shard searches, each shard's local ids offset back to
        the global pattern table."""
        if not lowered:
            haystack = haystack.lower()
        self.searches += 1
        found: Set[int] = set()
        for index, (start, stop) in enumerate(self._bounds):
            if start == stop:  # empty pattern table
                continue
            hits = self._shard(index).search(haystack, lowered=True)
            if hits:
                if start:
                    found.update(local + start for local in hits)
                else:
                    found.update(hits)
        return found

    def contains_any(self, haystack: bytes, *, lowered: bool = False) -> bool:
        """Whether any pattern occurs (early-exit across shards)."""
        if not lowered:
            haystack = haystack.lower()
        self.searches += 1
        for index, (start, stop) in enumerate(self._bounds):
            if start == stop:
                continue
            if self._shard(index).contains_any(haystack, lowered=True):
                return True
        return False

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without compiled shard engines: a worker re-compiles its
        shards lazily (and caches the ruleset by digest), so shipping the
        compiled automata would only bloat the transfer blob."""
        state = self.__dict__.copy()
        state["_engines"] = [None] * len(self._bounds)
        state["shards_compiled"] = 0
        state["compile_seconds"] = 0.0
        state["searches"] = 0
        return state
