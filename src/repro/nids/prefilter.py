"""C-speed fast-pattern prefilter built on CPython's ``re`` engine.

:class:`RegexPrefilter` answers the same question as
:class:`repro.nids.automaton.AhoCorasick` — *which fast patterns occur in
this payload?* — but drives the scan through ``sre``'s compiled C loop
instead of a pure-Python per-byte state machine.  On the study archive this
is the difference between ~60 ns/byte and memory-bandwidth-class scanning,
the same trick real multi-pattern engines (Snort's MPSE, Hyperscan) rely on.

Three non-obvious choices make the regex route both fast and *exact*:

* **Trie-factored alternations.**  A flat ``p1|p2|...|pN`` alternation makes
  ``sre`` try all N branches at every candidate position (measured ~10 us
  per 160-byte payload at N=72 — the "alternation-size cliff").  Factoring
  the patterns into a byte trie (``ab(?:c|d)`` instead of ``abc|abd``) means
  a position is rejected after at most one comparison per distinct leading
  byte.  Patterns are additionally batched into chunks of at most
  ``chunk_size`` so a pathological ruleset cannot produce one enormous
  program.

* **No capture groups.**  Wrapping alternatives in groups (to learn *which*
  pattern matched) disables ``sre``'s branch optimisations — a measured
  ~50x slowdown.  Instead the matched *text* identifies the pattern: every
  trie match spells out exactly one pattern, so ``match.group()`` is a dict
  key into the pattern table.

* **Occurrence closure.**  ``finditer`` reports non-overlapping matches,
  and the greedy trie yields the *longest* pattern at each position.  Two
  completeness fixes recover full Aho-Corasick semantics: (1) every proper
  prefix of a reported pattern that is itself a pattern also occurs at the
  reported position (prefix closure, precomputed); (2) a pattern can hide
  *inside* a reported span — it must then be a substring of the reported
  pattern at offset >= 1, or start with one of its proper suffixes (overlap
  sets, precomputed) — and those few candidates are confirmed with a single
  C-level ``in`` check.  Any pattern occurrence not covered by these cases
  would have been the leftmost match of some ``finditer`` step, hence
  reported.

Matching is case-insensitive exactly like the automaton: patterns are
lowercased at build time and haystacks are lowercased (or declared already
lowered) at search time, so the two engines are drop-in interchangeable and
differentially tested against each other (``tests/test_prefilter.py``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set, Tuple

#: Patterns per compiled chunk.  Far below any hard ``sre`` limit; bounds
#: compile time and keeps each chunk's overlap precomputation quadratic in a
#: small constant.
DEFAULT_CHUNK_SIZE = 256

#: Patterns longer than this are kept out of the trie (deeply nested
#: ``(?:...)`` groups stress ``sre_parse`` recursion) and confirmed with a
#: direct ``in`` scan instead — a single C substring search each.
MAX_TRIE_PATTERN = 64


def _trie_regex(texts: Sequence[bytes]) -> "re.Pattern[bytes]":
    """Compile a byte-trie regex matching the *longest* of ``texts`` at
    each position (greedy descent, so extensions are tried before accepting
    a shorter terminal)."""
    root: Dict = {}
    for text in texts:
        node = root
        for byte in text:
            node = node.setdefault(byte, {})
        node[None] = True  # terminal marker

    def emit(node: Dict) -> bytes:
        terminal = None in node
        branches = [
            re.escape(bytes([byte])) + emit(child)
            for byte, child in sorted(
                (k, v) for k, v in node.items() if k is not None
            )
        ]
        if not branches:
            return b""
        body = b"|".join(branches)
        if terminal:
            return b"(?:" + body + b")?"
        if len(branches) > 1:
            return b"(?:" + body + b")"
        return body

    return re.compile(emit(root))


class _Chunk:
    """One compiled batch of patterns plus its occurrence-closure tables."""

    __slots__ = (
        "regex",
        "ids_by_text",
        "prefix_closure",
        "overlap_texts",
        "any_overlaps",
    )

    def __init__(self, texts: List[bytes], ids_by_text: Dict[bytes, Tuple[int, ...]]) -> None:
        self.regex = _trie_regex(texts)
        self.ids_by_text = ids_by_text
        # Proper prefixes of a matched text that are themselves patterns
        # occur at the same position; fold their ids in up front.
        self.prefix_closure: Dict[bytes, Tuple[int, ...]] = {}
        # Texts that can hide inside (or straddle out of) a reported match
        # of the keyed text; confirmed per haystack with an ``in`` check.
        self.overlap_texts: Dict[bytes, Tuple[bytes, ...]] = {}
        for text in texts:
            ids = list(ids_by_text[text])
            overlaps = []
            for other in texts:
                if other is text:
                    continue
                if text.startswith(other):  # proper prefix (texts are unique)
                    ids.extend(ids_by_text[other])
                    continue
                if other in text[1:]:
                    overlaps.append(other)
                    continue
                length = len(text)
                if any(
                    other.startswith(text[k:]) and len(other) > length - k
                    for k in range(1, length)
                ):
                    overlaps.append(other)
            self.prefix_closure[text] = tuple(ids)
            self.overlap_texts[text] = tuple(overlaps)
        self.any_overlaps = any(self.overlap_texts.values())


class RegexPrefilter:
    """A multi-pattern matcher over byte strings, API-compatible with
    :class:`repro.nids.automaton.AhoCorasick`.

    Pattern ids are indices into ``patterns``; duplicate patterns all
    report, empty patterns are rejected — identical contracts to the
    automaton so the two engines can be swapped and differentially tested.
    """

    def __init__(
        self,
        patterns: Sequence[bytes],
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.patterns: List[bytes] = [p.lower() for p in patterns]
        for index, pattern in enumerate(self.patterns):
            if not pattern:
                raise ValueError(f"empty pattern at index {index}")
        ids_by_text: Dict[bytes, List[int]] = {}
        for index, pattern in enumerate(self.patterns):
            ids_by_text.setdefault(pattern, []).append(index)
        frozen = {text: tuple(ids) for text, ids in ids_by_text.items()}

        # Long patterns bypass the trie; each is one C ``in`` scan.
        self._long: List[Tuple[bytes, Tuple[int, ...]]] = []
        short_texts: List[bytes] = []
        for text in frozen:  # first-seen order
            if len(text) > MAX_TRIE_PATTERN:
                self._long.append((text, frozen[text]))
            else:
                short_texts.append(text)

        self._chunks: List[_Chunk] = [
            _Chunk(
                short_texts[start : start + chunk_size],
                frozen,
            )
            for start in range(0, len(short_texts), chunk_size)
        ]

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def search(self, haystack: bytes, *, lowered: bool = False) -> Set[int]:
        """Ids of every pattern occurring in the haystack.

        ``lowered`` declares the haystack already lowercased, skipping the
        ``bytes.lower`` allocation (see :meth:`AhoCorasick.search`).

        The scan itself is ``findall`` — the entire haystack sweep and the
        per-occurrence extraction stay inside the C engine; Python touches
        only the (few) *distinct* matched texts.
        """
        if not lowered:
            haystack = haystack.lower()
        found: Set[int] = set()
        for chunk in self._chunks:
            texts = set(chunk.regex.findall(haystack))
            if not texts:
                continue
            closure = chunk.prefix_closure
            for text in texts:
                found.update(closure[text])
            if chunk.any_overlaps:
                overlap_texts = chunk.overlap_texts
                for text in tuple(texts):
                    for candidate in overlap_texts[text]:
                        if candidate not in texts and candidate in haystack:
                            texts.add(candidate)
                            found.update(closure[candidate])
        for text, ids in self._long:
            if text in haystack:
                found.update(ids)
        return found

    def contains_any(self, haystack: bytes, *, lowered: bool = False) -> bool:
        """Whether any pattern occurs (early-exit variant of search)."""
        if not lowered:
            haystack = haystack.lower()
        for chunk in self._chunks:
            if chunk.regex.search(haystack) is not None:
                return True
        for text, _ in self._long:
            if text in haystack:
                return True
        return False
