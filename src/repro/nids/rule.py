"""Rule AST: the parsed form of a Snort signature.

The AST keeps detection options (:class:`ContentMatch`, :class:`PcreMatch`)
in source order because Snort's relative modifiers (``distance``/``within``)
chain each match to the previous one.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple, Union


class HttpBuffer(enum.Enum):
    """Which reassembled buffer a content/pcre option inspects."""

    RAW = "raw"
    HTTP_URI = "http_uri"
    HTTP_HEADER = "http_header"
    HTTP_COOKIE = "http_cookie"
    HTTP_CLIENT_BODY = "http_client_body"
    HTTP_METHOD = "http_method"


@dataclass(frozen=True)
class ContentMatch:
    """A ``content`` option with its modifiers."""

    pattern: bytes
    nocase: bool = False
    buffer: HttpBuffer = HttpBuffer.RAW
    negated: bool = False
    offset: Optional[int] = None
    depth: Optional[int] = None
    distance: Optional[int] = None
    within: Optional[int] = None
    fast_pattern: bool = False

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("empty content pattern")
        if self.depth is not None and self.depth < len(self.pattern):
            raise ValueError("depth shorter than pattern")

    @property
    def is_relative(self) -> bool:
        """Whether the match anchors to the previous option's end."""
        return self.distance is not None or self.within is not None


@dataclass(frozen=True)
class PcreMatch:
    """A ``pcre`` option (Python ``re`` subset of PCRE)."""

    pattern: str
    flags: int = 0
    buffer: HttpBuffer = HttpBuffer.RAW
    negated: bool = False

    def compiled(self) -> "re.Pattern[bytes]":
        return re.compile(self.pattern.encode("utf-8"), self.flags)


class PortSpec:
    """A Snort port constraint: ``any``, ``80``, ``!80``, ``[80,8080]``,
    ``8000:8100`` or combinations inside brackets."""

    def __init__(
        self,
        *,
        any_port: bool = False,
        ports: Tuple[int, ...] = (),
        ranges: Tuple[Tuple[int, int], ...] = (),
        negated: bool = False,
    ) -> None:
        self.any_port = any_port
        self.ports = frozenset(ports)
        self.ranges = tuple(ranges)
        self.negated = negated

    @classmethod
    def parse(cls, text: str) -> "PortSpec":
        """Parse a port specification.

        >>> PortSpec.parse("any").matches(1234)
        True
        >>> PortSpec.parse("[80,8080]").matches(8080)
        True
        >>> PortSpec.parse("!80").matches(80)
        False
        >>> PortSpec.parse("8000:8100").matches(8050)
        True
        """
        text = text.strip()
        negated = text.startswith("!")
        if negated:
            text = text[1:].strip()
        if text.lower() == "any":
            if negated:
                raise ValueError("!any is not a valid port spec")
            return cls(any_port=True)
        if text.startswith("[") and text.endswith("]"):
            text = text[1:-1]
        ports = []
        ranges = []
        for piece in text.split(","):
            piece = piece.strip()
            if not piece:
                continue
            if ":" in piece:
                low_text, _, high_text = piece.partition(":")
                low = int(low_text) if low_text else 0
                high = int(high_text) if high_text else 65535
                if low > high:
                    raise ValueError(f"inverted port range: {piece!r}")
                ranges.append((low, high))
            else:
                ports.append(int(piece))
        if not ports and not ranges:
            raise ValueError(f"empty port spec: {text!r}")
        return cls(ports=tuple(ports), ranges=tuple(ranges), negated=negated)

    def matches(self, port: int) -> bool:
        if self.any_port:
            return True
        inside = port in self.ports or any(
            low <= port <= high for low, high in self.ranges
        )
        return not inside if self.negated else inside

    def _key(self) -> Tuple[bool, frozenset, Tuple[Tuple[int, int], ...], bool]:
        return (self.any_port, self.ports, tuple(sorted(self.ranges)), self.negated)

    def __eq__(self, other: object) -> bool:
        """Structural equality (same accepted port set as written), so a
        rendered rule's :class:`Rule` compares equal after a parse
        round-trip."""
        if not isinstance(other, PortSpec):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.any_port:
            return "PortSpec(any)"
        prefix = "!" if self.negated else ""
        parts = sorted(self.ports) + [f"{lo}:{hi}" for lo, hi in self.ranges]
        return f"PortSpec({prefix}{parts})"


ANY_PORT = PortSpec(any_port=True)


@dataclass(frozen=True)
class SizeBound:
    """A numeric size constraint: ``urilen`` (URI length) or ``dsize``
    (payload size).  Supports exact, ``<N``, ``>N`` and ``N<>M`` ranges."""

    kind: str  # "urilen" | "dsize"
    low: Optional[int] = None
    high: Optional[int] = None
    exact: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("urilen", "dsize"):
            raise ValueError(f"unknown size option {self.kind!r}")
        if self.exact is None and self.low is None and self.high is None:
            raise ValueError("size bound needs a constraint")

    @classmethod
    def parse(cls, kind: str, text: str) -> "SizeBound":
        """Parse Snort size syntax.

        >>> SizeBound.parse("dsize", ">100").matches(150)
        True
        >>> SizeBound.parse("urilen", "10<>20").matches(15)
        True
        """
        text = text.strip()
        if "<>" in text:
            low_text, _, high_text = text.partition("<>")
            return cls(kind=kind, low=int(low_text), high=int(high_text))
        if text.startswith("<"):
            return cls(kind=kind, high=int(text[1:]))
        if text.startswith(">"):
            return cls(kind=kind, low=int(text[1:]))
        return cls(kind=kind, exact=int(text))

    def matches(self, size: int) -> bool:
        if self.exact is not None:
            return size == self.exact
        if self.low is not None and size <= self.low:
            return False
        if self.high is not None and size >= self.high:
            return False
        return True


@dataclass(frozen=True)
class IsDataAt:
    """``isdataat``: require (or forbid, negated) payload data at an
    offset, optionally relative to the previous match."""

    offset: int
    relative: bool = False
    negated: bool = False

    @classmethod
    def parse(cls, text: str) -> "IsDataAt":
        text = text.strip()
        negated = text.startswith("!")
        if negated:
            text = text[1:]
        parts = [part.strip() for part in text.split(",")]
        return cls(
            offset=int(parts[0]),
            relative="relative" in parts[1:],
            negated=negated,
        )


DetectionOption = Union[ContentMatch, PcreMatch, SizeBound, IsDataAt]


@dataclass(frozen=True)
class Rule:
    """A parsed Snort rule."""

    action: str
    protocol: str
    src: str
    src_ports: PortSpec
    dst: str
    dst_ports: PortSpec
    msg: str
    sid: int
    rev: int = 1
    options: Tuple[DetectionOption, ...] = ()
    references: Tuple[Tuple[str, str], ...] = ()
    metadata: Dict[str, str] = field(default_factory=dict)
    flow_to_server: bool = False

    def __post_init__(self) -> None:
        if self.sid <= 0:
            raise ValueError(f"invalid sid: {self.sid}")

    @property
    def cve_ids(self) -> Tuple[str, ...]:
        """CVE identifiers from ``reference:cve,...`` options."""
        return tuple(
            f"CVE-{value}" if not value.upper().startswith("CVE-") else value.upper()
            for scheme, value in self.references
            if scheme.lower() == "cve"
        )

    def port_insensitive(self) -> "Rule":
        """The study's rewrite: drop all port constraints (Section 3.1)."""
        return replace(self, src_ports=ANY_PORT, dst_ports=ANY_PORT)

    @property
    def fast_pattern(self) -> Optional[ContentMatch]:
        """The content used for prefiltering: the explicit ``fast_pattern``
        option if present, else the longest positive content."""
        explicit = [
            option
            for option in self.options
            if isinstance(option, ContentMatch) and option.fast_pattern
        ]
        if explicit:
            return explicit[0]
        candidates = [
            option
            for option in self.options
            if isinstance(option, ContentMatch) and not option.negated
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda option: len(option.pattern))
