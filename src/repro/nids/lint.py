"""Ruleset linting: the quality checks behind Section 3.2's rule pruning.

The paper's root-cause analysis exists because some signatures are unsound —
overly general contents that fire on endpoint access rather than
exploitation.  This linter encodes the static half of that judgement: it
flags rules whose shape predicts false positives or missed traffic *before*
any packet is matched, the review an IDS vendor would run pre-release.

Checks:

* ``short-content`` — every positive content is shorter than 4 bytes
  (high collision probability against benign traffic);
* ``generic-endpoint`` — the rule's only anchor is a common path (login,
  admin, manager...) with no exploit structure — the exact pattern the
  paper's RCA removed;
* ``no-fast-pattern`` — no positive content at all (pure pcre): the rule
  bypasses the multi-pattern prefilter and costs a full evaluation per
  session;
* ``port-constrained`` — destination ports restricted, which the study
  shows misses off-port scanning (the reason for the port-insensitive
  rewrite);
* ``missing-cve-reference`` — alerts cannot be attributed to a CVE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.nids.rule import ContentMatch, PcreMatch, Rule

#: Endpoint fragments that appear in benign traffic at volume.
_GENERIC_ENDPOINTS = (
    b"/login",
    b"/admin",
    b"/manager",
    b"/index",
    b"/api/",
    b"/cgi-bin/",
    b"/wp-",
)

#: Byte fragments indicating actual exploit structure inside a pattern:
#: injection syntax, encoded traversal/braces, path-parameter (`;`) tricks.
_STRUCTURE_HINTS = (
    b"${", b"%24", b"..", b"`", b"$(", b"<!", b"%27", b"jndi",
    b"classloader", b"t(java", b"loadlib", b"\x00", b";", b"%2e", b"%7d",
)


@dataclass(frozen=True)
class LintFinding:
    """One linter complaint about one rule."""

    sid: int
    check: str
    message: str


def _positive_contents(rule: Rule) -> List[ContentMatch]:
    return [
        option
        for option in rule.options
        if isinstance(option, ContentMatch) and not option.negated
    ]


def lint_rule(rule: Rule) -> List[LintFinding]:
    """Run all checks against one rule."""
    findings: List[LintFinding] = []
    contents = _positive_contents(rule)

    if contents and all(len(option.pattern) < 4 for option in contents):
        findings.append(
            LintFinding(
                sid=rule.sid,
                check="short-content",
                message="all positive contents shorter than 4 bytes",
            )
        )

    if contents:
        lowered = [option.pattern.lower() for option in contents]
        # Fire when *every* positive content is a generic endpoint and none
        # carries exploit structure: a rule anchored on several benign paths
        # is exactly as unsound as one anchored on a single benign path
        # (each extra generic content only narrows *which* benign traffic
        # false-positives, not whether it does).
        all_generic = all(
            any(endpoint in pattern for endpoint in _GENERIC_ENDPOINTS)
            for pattern in lowered
        )
        structured = any(
            any(hint in pattern for hint in _STRUCTURE_HINTS)
            for pattern in lowered
        )
        if all_generic and not structured:
            findings.append(
                LintFinding(
                    sid=rule.sid,
                    check="generic-endpoint",
                    message=(
                        "every positive content matches a common endpoint "
                        "with no exploit structure; will fire on benign "
                        "access"
                    ),
                )
            )

    if not contents:
        has_pcre = any(isinstance(o, PcreMatch) for o in rule.options)
        findings.append(
            LintFinding(
                sid=rule.sid,
                check="no-fast-pattern",
                message=(
                    "no positive content; rule bypasses the prefilter"
                    + (" (pure pcre)" if has_pcre else "")
                ),
            )
        )

    if not rule.dst_ports.any_port:
        findings.append(
            LintFinding(
                sid=rule.sid,
                check="port-constrained",
                message="destination ports restricted; off-port scanning missed",
            )
        )

    if not rule.cve_ids:
        findings.append(
            LintFinding(
                sid=rule.sid,
                check="missing-cve-reference",
                message="no reference:cve; alerts cannot be attributed",
            )
        )
    return findings


def lint_rules(rules: Sequence[Rule]) -> List[LintFinding]:
    """Lint a whole ruleset; findings ordered by sid then check."""
    findings: List[LintFinding] = []
    for rule in rules:
        findings.extend(lint_rule(rule))
    findings.sort(key=lambda finding: (finding.sid, finding.check))
    return findings
