"""Multiprocess post-facto scanning: zero-copy transfer, warm pools,
crash recovery, and checkpoints.

The study's NIDS pass is embarrassingly parallel: each stored session is
matched against the ruleset independently, and the per-session results are
merged back in session order.  This module partitions a session archive into
contiguous chunks, evaluates them in a process pool, and concatenates the
per-chunk alert lists — so the merged output is *identical* (same alerts,
same order, same fields) to a serial scan of the same stream.

Transfer costs, not match work, used to dominate a pool scan (the measured
fork + pickle-tuple path was a 0.61x *slowdown* at full scale), so the data
plane is built around three ideas:

* **shared-memory arenas** (:mod:`repro.nids.arena`): the session archive
  and the pickled ruleset are serialized once into a flat byte-frame
  segment; workers — on *every* start method — receive only ``(start,
  stop)`` index pairs, attach to the segment by name, decode just their
  slice through memoryviews, and cache the compiled ruleset by digest, so
  repeated scans ship zero bytes of ruleset.  The ruleset pickles in
  *source* form (``Ruleset.__getstate__`` drops every derived table, so
  the blob stays compact even at 10k-rule scale); each worker compiles
  once per digest, and with a sharded prefilter the shards themselves
  compile lazily — only on the first chunk whose payloads search them —
  and stay warm in the digest cache for every later chunk and scan;
* a **persistent warm pool** (:class:`WorkerPool`): worker processes are
  started lazily and *reused* across scans, pipeline stages, and repeated
  ``run_study`` calls instead of being re-forked per scan (``pool_reuses``
  on the telemetry counts the savings);
* a **break-even fallback**: streams smaller than
  :data:`DEFAULT_PARALLEL_THRESHOLD` sessions (override with
  ``REPRO_PARALLEL_THRESHOLD``) are scanned serially in-process even when
  workers were requested — below that size, arena build + pool dispatch
  cost more than the match work saved.  The decision is recorded as
  ``fallback_serial`` on the telemetry (and from there in the run
  manifest).

The previous fork/COW + pickled-tuple transfer survives one release as the
differential-testing reference behind ``REPRO_TRANSFER=pickle`` (with a
warn-once notice), exactly like the ``REPRO_PREFILTER=aho`` engine escape
hatch.

Fault tolerance (the recovery protocol, shared by both transfer paths):

* chunks are submitted as individual futures, so one chunk's outcome never
  implicates another's.  A chunk-level exception marks only that chunk
  failed; a worker *death* (OOM kill, segfault, ``os._exit``) breaks the
  whole pool, which is respawned — bounded by :data:`MAX_POOL_RESPAWNS`,
  with exponential backoff — and only the still-unfinished chunks are
  resubmitted;
* a chunk that fails :data:`MAX_CHUNK_ATTEMPTS` times is a **poison
  chunk**: it is taken out of the pool entirely and scanned serially
  in-process, so the merged output stays byte-identical to a serial scan
  no matter how the pool misbehaves;
* with a checkpoint store attached, every completed chunk spills its result
  to disk (:mod:`repro.cache.checkpoint`); a killed process rescans only
  the chunks that never checkpointed on its next run;
* the arena segment is unlinked in a ``finally`` (backed by a
  ``weakref.finalize`` finalizer), so aborted or crashed scans do not leak
  ``/dev/shm`` space; SIGKILL orphans are swept by
  :func:`repro.cache.gc.collect_shm_garbage`.

Recovery and transfer work are counted on the returned
:class:`ScanTelemetry` (``chunk_retries``, ``pool_respawns``,
``recovered_chunks``, ``poison_chunks``, ``checkpoint_hits``,
``arena_bytes``, ``arena_build_seconds``, ``transfer_seconds``,
``pool_reuses``, ``fallback_serial``).

Deterministic fault injection makes all of this testable without real OOMs:
``REPRO_FAULT=worker_crash:<chunk>[:<times>]`` kills the worker scanning
that chunk on its first ``times`` attempts, ``chunk_error:<chunk>[:<times>]``
raises inside it instead, and ``scan_abort:<n>`` aborts the *parent* after
``n`` chunks have completed (simulating a killed run whose checkpoints
survive).  Worker faults cross into warm-pool workers inside the task
tuples themselves (a long-lived worker cannot re-read the parent's
environment), so ``REPRO_FAULT`` keeps working no matter when the pool was
started.  Tests can also install an in-process callable via
:data:`_fault_hook`; since a callable cannot cross into an already-running
pool, a scan with the hook set runs on a dedicated fork pool.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from datetime import datetime
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.net.pcapstore import _TIME_FORMAT
from repro.net.session import TcpSession
from repro.nids.arena import SessionArena
from repro.nids.ruleset import Alert, Ruleset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.checkpoint import CheckpointStore
    from repro.nids.engine import ScanTelemetry

#: Chunks handed to the pool per worker: >1 so a slow chunk (one dense with
#: candidate-heavy payloads) does not leave the other workers idle at the
#: end of the scan.
CHUNKS_PER_WORKER = 4

#: Pool attempts per chunk before it is declared poison and scanned
#: serially in-process.
MAX_CHUNK_ATTEMPTS = 2

#: Pool generations (original + respawns) before the remaining chunks all
#: fall back to the in-process serial scan.
MAX_POOL_RESPAWNS = 3

#: Exponential backoff between pool respawns: base * 2**(respawn-1),
#: capped.  ``REPRO_RETRY_BACKOFF`` overrides the base (tests set it to 0).
BACKOFF_BASE_SECONDS = 0.05
BACKOFF_MAX_SECONDS = 2.0

#: How long the parent waits for every worker to fork and reach the warm-up
#: barrier before declaring the pool broken (legacy pickle path only).
WARMUP_TIMEOUT_SECONDS = 60.0

#: Sessions below which a parallel-requested scan runs serially in-process.
#: Calibrated against the measured serial throughput (~150k sessions/s at
#: study scale on the reference container) vs the fixed parallel overhead
#: (arena build at ~1M sessions/s plus pool dispatch, ~100-200 ms): below a
#: few tens of thousands of sessions the pool cannot pay for itself even
#: with perfect scaling.  Override with ``REPRO_PARALLEL_THRESHOLD`` (0
#: forces the pool on, e.g. for tests and benches).
DEFAULT_PARALLEL_THRESHOLD = 25000

#: Environment knobs.
TRANSFER_ENV = "REPRO_TRANSFER"
THRESHOLD_ENV = "REPRO_PARALLEL_THRESHOLD"

#: Compiled rulesets a worker keeps, keyed by blob digest.  Two is enough
#: for a differential bench (aho vs regex) to ping-pong without recompiles;
#: four gives headroom for overlapping studies.
RULESET_CACHE_SIZE = 4

_TRANSFER_WARNED = False

_worker_ruleset: Optional[Ruleset] = None
#: (ruleset, sessions) pinned for fork-inherited workers — **legacy pickle
#: path only**.  Module-global by necessity (forked children read it from
#: their memory snapshot), so :data:`_fork_lock` serialises the pin → fork
#: window; see :func:`_forked_pool`.
_fork_state: Optional[Tuple[Ruleset, List[TcpSession]]] = None
_fork_barrier = None
_fork_lock = threading.Lock()

#: Test hook: called in the parent once its pool is ready (workers
#: available, no locks held) and before any chunk is scanned.  Lets tests
#: assert that two threaded scans genuinely overlap.
_after_fork_hook: Optional[Callable[[], None]] = None

#: Fault-injection hook: called in each worker as ``hook(chunk_index,
#: attempt)`` before the chunk is scanned; it may raise or ``os._exit``.
#: When None, the fault spec shipped in the task (arena path) or
#: ``REPRO_FAULT`` (legacy path) is consulted instead.  A callable cannot
#: cross into an already-warm pool, so scans run on a dedicated fork pool
#: while the hook is set.
_fault_hook: Optional[Callable[[int, int], None]] = None

AlertTuple = tuple


class InjectedFault(RuntimeError):
    """A chunk-level failure raised by the fault-injection hook."""


class ScanAborted(RuntimeError):
    """The parent-side ``scan_abort`` fault fired (simulated kill)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``REPRO_FAULT`` directive."""

    kind: str  #: ``worker_crash`` | ``chunk_error`` | ``scan_abort``
    target: int  #: chunk index (crash/error) or completed-chunk count (abort)
    times: int = 1  #: how many attempts the fault fires on (crash/error)


def parse_fault(text: Optional[str]) -> Optional[FaultSpec]:
    """Parse ``kind:target[:times]`` fault syntax (None/empty → no fault).

    >>> parse_fault("worker_crash:3")
    FaultSpec(kind='worker_crash', target=3, times=1)
    >>> parse_fault("chunk_error:0:2").times
    2
    >>> parse_fault(None) is None
    True
    """
    if not text:
        return None
    parts = text.split(":")
    if parts[0] not in ("worker_crash", "chunk_error", "scan_abort"):
        raise ValueError(f"unknown fault kind in {text!r}")
    if len(parts) not in (2, 3):
        raise ValueError(f"malformed fault spec {text!r}")
    try:
        target = int(parts[1])
        times = int(parts[2]) if len(parts) == 3 else 1
    except ValueError:
        raise ValueError(f"malformed fault spec {text!r}") from None
    return FaultSpec(kind=parts[0], target=target, times=times)


def _active_fault() -> Optional[FaultSpec]:
    return parse_fault(os.environ.get("REPRO_FAULT"))


def resolve_transfer(transfer: Optional[str] = None) -> str:
    """Resolve the transfer plane: explicit argument > ``REPRO_TRANSFER`` >
    the ``arena`` default.  ``pickle`` (the pre-arena fork/COW + tuple
    path) is deprecated and warns once per process."""
    global _TRANSFER_WARNED
    chosen = transfer if transfer is not None else os.environ.get(TRANSFER_ENV)
    chosen = chosen or "arena"
    if chosen not in ("arena", "pickle"):
        raise ValueError(
            f"unknown transfer plane {chosen!r}; known: arena, pickle"
        )
    if chosen == "pickle" and not _TRANSFER_WARNED:
        _TRANSFER_WARNED = True
        warnings.warn(
            "REPRO_TRANSFER=pickle (the fork/COW tuple transfer) is kept "
            "one release as a differential-testing reference and will be "
            "removed; the shared-memory arena plane is the default",
            FutureWarning,
            stacklevel=2,
        )
    return chosen


def parallel_threshold(threshold: Optional[int] = None) -> int:
    """Resolve the serial-fallback break-even size: explicit argument >
    ``REPRO_PARALLEL_THRESHOLD`` > :data:`DEFAULT_PARALLEL_THRESHOLD`."""
    if threshold is not None:
        if threshold < 0:
            raise ValueError("parallel threshold must be >= 0")
        return threshold
    env = os.environ.get(THRESHOLD_ENV)
    if env is not None and env != "":
        value = int(env)
        if value < 0:
            raise ValueError(f"{THRESHOLD_ENV} must be >= 0, got {env!r}")
        return value
    return DEFAULT_PARALLEL_THRESHOLD


def _inject_worker_fault(
    chunk_index: int, attempt: int, spec: Optional[FaultSpec] = None
) -> None:
    """Worker-side fault point, reached before a chunk is scanned.

    ``spec`` is the fault shipped inside the task (arena path); the legacy
    path still reads ``REPRO_FAULT`` from the (fork-inherited) environment.
    """
    hook = _fault_hook
    if hook is not None:
        hook(chunk_index, attempt)
        return
    if spec is None:
        spec = _active_fault()
    if spec is None or spec.kind == "scan_abort":
        return
    if spec.target == chunk_index and attempt <= spec.times:
        if spec.kind == "worker_crash":
            # Simulate an OOM kill / segfault: die without cleanup, which
            # breaks the whole pool, not just this future.
            os._exit(99)
        raise InjectedFault(
            f"injected chunk_error on chunk {chunk_index} attempt {attempt}"
        )


def _encode_alerts(alerts: List[Alert]) -> List[AlertTuple]:
    return [
        (
            alert.session_id,
            alert.timestamp,
            alert.sid,
            alert.cve_id,
            alert.rule_published,
            alert.dst_ip,
            alert.dst_port,
            alert.src_ip,
        )
        for alert in alerts
    ]


def _decode_alerts(rows: List[AlertTuple]) -> List[Alert]:
    return [
        Alert(
            session_id=row[0],
            timestamp=row[1],
            sid=row[2],
            cve_id=row[3],
            rule_published=row[4],
            dst_ip=row[5],
            dst_port=row[6],
            src_ip=row[7],
        )
        for row in rows
    ]


def _rows_to_json(rows: List[AlertTuple]) -> List[list]:
    """Alert tuples → JSON-native lists (timestamps to strings)."""
    return [
        [
            row[0],
            row[1].strftime(_TIME_FORMAT),
            row[2],
            row[3],
            row[4].strftime(_TIME_FORMAT),
            row[5],
            row[6],
            row[7],
        ]
        for row in rows
    ]


def _rows_from_json(rows: List[list]) -> List[AlertTuple]:
    return [
        (
            row[0],
            datetime.strptime(row[1], _TIME_FORMAT),
            row[2],
            row[3],
            datetime.strptime(row[4], _TIME_FORMAT),
            row[5],
            row[6],
            row[7],
        )
        for row in rows
    ]


ChunkResult = Tuple[List[AlertTuple], int, "ScanTelemetry"]


# ---------------------------------------------------------------------------
# Arena transfer plane: worker side
# ---------------------------------------------------------------------------

#: Worker-local arena attachment.  One archive is live per scan, so workers
#: keep a single attachment and swap it when a task names a new segment
#: (closing the old mapping releases its pages even after the parent
#: unlinked the name).
_worker_arena: Optional[SessionArena] = None

#: Worker-local compiled rulesets, keyed by blob digest: a warm worker
#: scanning the same study twice never re-unpickles or recompiles.
_worker_rulesets: "OrderedDict[str, Ruleset]" = OrderedDict()


def _attached_arena(name: str) -> SessionArena:
    global _worker_arena
    arena = _worker_arena
    if arena is not None:
        try:
            if arena.name == name:
                return arena
        except ValueError:  # pragma: no cover - closed underneath us
            pass
        arena.close()
    arena = SessionArena.attach(name)
    _worker_arena = arena
    return arena


def _ruleset_for(arena: SessionArena, digest: str) -> Ruleset:
    ruleset = _worker_rulesets.get(digest)
    if ruleset is None:
        ruleset = pickle.loads(arena.ruleset_blob())
        ruleset._ensure_compiled()
        _worker_rulesets[digest] = ruleset
        while len(_worker_rulesets) > RULESET_CACHE_SIZE:
            _worker_rulesets.popitem(last=False)
    else:
        _worker_rulesets.move_to_end(digest)
    return ruleset


ArenaTask = Tuple[int, int, int, int, str, str, Optional[FaultSpec]]


def _scan_arena_chunk(task: ArenaTask) -> ChunkResult:
    """Arena path: scan one ``(start, stop)`` slice of the shared segment."""
    from repro.nids.engine import scan_stream

    chunk_index, attempt, start, stop, arena_name, digest, fault = task
    _inject_worker_fault(chunk_index, attempt, fault)
    arena = _attached_arena(arena_name)
    ruleset = _ruleset_for(arena, digest)
    alerts, scanned, telemetry = scan_stream(ruleset, arena.sessions(start, stop))
    return _encode_alerts(alerts), scanned, telemetry


# ---------------------------------------------------------------------------
# Legacy pickle transfer plane: worker side (one release of grace)
# ---------------------------------------------------------------------------


def _init_worker(ruleset_blob: bytes) -> None:
    """Spawn-path pool initializer: install this worker's compiled ruleset."""
    global _worker_ruleset
    ruleset = pickle.loads(ruleset_blob)
    ruleset._ensure_compiled()
    _worker_ruleset = ruleset


def _warmup() -> None:
    """Fork-path warm-up task: park this worker on the fork barrier.

    One warm-up task is submitted per pool slot; each blocks its worker
    until every worker (plus the parent) has arrived, which proves all
    ``max_workers`` processes forked while the fork state was pinned.
    """
    barrier = _fork_barrier
    if barrier is not None:
        barrier.wait(WARMUP_TIMEOUT_SECONDS)


def _scan_chunk(
    task: Tuple[int, int, Sequence[TcpSession]]
) -> ChunkResult:
    """Spawn path: scan one shipped chunk with the worker-local ruleset."""
    from repro.nids.engine import scan_stream

    chunk_index, attempt, sessions = task
    if _worker_ruleset is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker ruleset not initialised")
    _inject_worker_fault(chunk_index, attempt)
    alerts, scanned, telemetry = scan_stream(_worker_ruleset, sessions)
    return _encode_alerts(alerts), scanned, telemetry


def _scan_range(task: Tuple[int, int, int, int]) -> ChunkResult:
    """Fork path: scan a slice of the inherited session list."""
    from repro.nids.engine import scan_stream

    chunk_index, attempt, start, stop = task
    if _fork_state is None:  # pragma: no cover - set before the pool forks
        raise RuntimeError("fork state not pinned")
    _inject_worker_fault(chunk_index, attempt)
    ruleset, sessions = _fork_state
    alerts, scanned, telemetry = scan_stream(ruleset, sessions[start:stop])
    return _encode_alerts(alerts), scanned, telemetry


def chunk_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` slices covering ``range(total)``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


# ---------------------------------------------------------------------------
# Pools
# ---------------------------------------------------------------------------


def _pool_context():
    """The warm pool's start method: fork where available (cheap respawn,
    shared resource tracker), the platform default elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - spawn-only


class WorkerPool:
    """A lazily-started, respawnable, *reusable* process pool.

    The executor is created on first :meth:`executor` call and kept until
    :meth:`retire` (a broken generation: the next ``executor()`` starts a
    fresh one) or :meth:`shutdown`.  Arena-path workers hold no per-scan
    state — tasks carry the arena name and ruleset digest — so one pool
    serves any number of scans, rulesets, and threads concurrently.
    """

    def __init__(self, max_workers: int, *, mp_context=None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._ctx = mp_context if mp_context is not None else _pool_context()
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Executor generations started over this pool's lifetime.
        self.generations = 0
        #: Scans that acquired this pool (see :func:`acquire_warm_pool`).
        self.uses = 0

    @property
    def started(self) -> bool:
        return self._pool is not None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, starting a fresh generation if needed."""
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=self._ctx
                )
                self.generations += 1
            return self._pool

    def retire(self, broken: ProcessPoolExecutor) -> None:
        """Discard a dead generation (no-op if it was already replaced —
        two threads sharing the pool may both witness the same death)."""
        with self._lock:
            if self._pool is not broken:
                return
            self._pool = None
        broken.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


_warm_lock = threading.Lock()
_warm_pool: Optional[WorkerPool] = None


def acquire_warm_pool(workers: int) -> Tuple[WorkerPool, bool]:
    """The process-wide warm pool, resized only when the worker count
    changes.  Returns ``(pool, reused)`` — ``reused`` is True when the
    pool's workers already exist from an earlier scan, i.e. this scan
    skipped the fork/spawn cost entirely."""
    global _warm_pool
    stale: Optional[WorkerPool] = None
    with _warm_lock:
        pool = _warm_pool
        if pool is None or pool.max_workers != workers:
            stale = pool
            pool = WorkerPool(workers)
            _warm_pool = pool
        reused = pool.started
        pool.uses += 1
    if stale is not None:
        stale.shutdown()
    return pool, reused


def shutdown_warm_pool() -> None:
    """Tear down the process-wide warm pool (tests, interpreter exit)."""
    global _warm_pool
    with _warm_lock:
        pool, _warm_pool = _warm_pool, None
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_warm_pool)


class _ScanPool:
    """Per-scan view of a pool: acquire generations, count respawns.

    ``dedicated`` scans (the :data:`_fault_hook` case — a callable cannot
    cross into already-running workers) fork a private pool and shut it
    down afterwards; everything else shares the warm pool.
    """

    def __init__(self, workers: int, *, dedicated: bool) -> None:
        self.dedicated = dedicated
        if dedicated:
            self.pool = WorkerPool(workers)
            self.reused = False
        else:
            self.pool, self.reused = acquire_warm_pool(workers)

    def executor(self) -> ProcessPoolExecutor:
        return self.pool.executor()

    def broken(self, executor: ProcessPoolExecutor) -> None:
        self.pool.retire(executor)

    def release(self) -> None:
        if self.dedicated:
            self.pool.shutdown()


@dataclass
class _LegacyPool:
    """Legacy pickle path: a fresh pool per generation (fork pin dance or
    spawn initializer), never reused."""

    ruleset: Ruleset
    items: List[TcpSession]
    workers: int
    use_fork: bool
    spawn_blob: bytes = b""
    _current: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        if self._current is None:
            size = self.workers
            if self.use_fork:
                self._current = _forked_pool(self.ruleset, self.items, size)
            else:  # pragma: no cover - spawn-only platforms
                self._current = ProcessPoolExecutor(
                    max_workers=size,
                    initializer=_init_worker,
                    initargs=(self.spawn_blob,),
                )
        return self._current

    def broken(self, executor: ProcessPoolExecutor) -> None:
        if self._current is executor:
            self._current = None
        executor.shutdown(wait=False, cancel_futures=True)

    def release(self) -> None:
        if self._current is not None:
            self._current.shutdown(wait=True, cancel_futures=True)
            self._current = None


def _forked_pool(
    ruleset: Ruleset, items: List[TcpSession], max_workers: int
) -> ProcessPoolExecutor:
    """A fork-context pool whose workers all inherit ``(ruleset, items)``.

    :data:`_fork_lock` covers only the pin → fork window: the state is
    pinned, the pool created, and one warm-up task submitted per slot; once
    every worker has reached the warm-up barrier, all ``max_workers``
    processes exist (the executor never forks again for this pool), so the
    pin is dropped and the lock released before any chunk is scheduled.
    """
    global _fork_state, _fork_barrier
    ctx = multiprocessing.get_context("fork")
    with _fork_lock:
        _fork_state = (ruleset, items)
        _fork_barrier = ctx.Barrier(max_workers + 1)
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)
            warmups = [pool.submit(_warmup) for _ in range(max_workers)]
            try:
                _fork_barrier.wait(WARMUP_TIMEOUT_SECONDS)
            except threading.BrokenBarrierError:
                pool.shutdown(wait=False, cancel_futures=True)
                raise BrokenProcessPool(
                    "workers failed to fork within the warm-up window"
                ) from None
            for warmup in warmups:
                warmup.result()
        finally:
            _fork_state = None
            _fork_barrier = None
    return pool


class _ChunkCheckpoints:
    """Per-chunk result spill for one scan's chunking.

    Blobs live under the caller's key (so deleting that key reclaims the
    whole run's recovery state at once) with the exact chunk bounds folded
    into each blob's name, so results can only ever be reused by a scan
    that partitions the same stream identically (a different
    ``workers``/``chunk_size`` simply misses and rescans).
    """

    def __init__(
        self,
        store: "CheckpointStore",
        key: str,
        bounds: List[Tuple[int, int]],
    ) -> None:
        digest = hashlib.blake2b(repr(bounds).encode("ascii"), digest_size=6)
        self.store = store
        self.key = key
        self.bounds = bounds
        self._chunking = digest.hexdigest()

    def _name(self, index: int) -> str:
        return f"chunk-{self._chunking}-{index:05d}"

    def load(self, index: int) -> Optional[ChunkResult]:
        from repro.nids.engine import ScanTelemetry

        payload = self.store.load(self.key, self._name(index))
        if payload is None:
            return None
        if payload.get("bounds") != list(self.bounds[index]):
            return None  # pragma: no cover - name folds bounds already
        return (
            _rows_from_json(payload["rows"]),
            payload["scanned"],
            ScanTelemetry.from_dict(payload["telemetry"]),
        )

    def save(
        self, index: int, rows: List[AlertTuple], scanned: int, telemetry
    ) -> None:
        self.store.save(
            self.key,
            self._name(index),
            {
                "bounds": list(self.bounds[index]),
                "rows": _rows_to_json(rows),
                "scanned": scanned,
                "telemetry": telemetry.as_dict(),
            },
        )


def _backoff_seconds(respawn: int) -> float:
    base = BACKOFF_BASE_SECONDS
    env = os.environ.get("REPRO_RETRY_BACKOFF")
    if env is not None:
        base = float(env)
    if base <= 0:
        return 0.0
    return min(base * (2 ** (respawn - 1)), BACKOFF_MAX_SECONDS)


def parallel_scan(
    ruleset: Ruleset,
    sessions: Iterable[TcpSession],
    *,
    workers: int,
    chunk_size: Optional[int] = None,
    checkpoint_store: Optional["CheckpointStore"] = None,
    checkpoint_key: Optional[str] = None,
    tracer=None,
    transfer: Optional[str] = None,
    threshold: Optional[int] = None,
) -> Tuple[List[Alert], int, "ScanTelemetry"]:
    """Scan sessions across ``workers`` processes, surviving worker death.

    Returns ``(alerts, sessions_scanned, telemetry)`` with alerts in
    session order — identical to what a serial :meth:`Ruleset.match_session`
    sweep over the same stream retains — and the per-worker telemetry merged
    in chunk order, recovery counters included.

    Streams below the break-even size (:func:`parallel_threshold`;
    ``threshold=0`` forces the pool on) are scanned serially in-process —
    parallel dispatch would only make them slower — with
    ``telemetry.fallback_serial`` recording the decision.

    ``transfer`` picks the data plane (:func:`resolve_transfer`): the
    default ``arena`` serializes the stream once into a shared-memory
    segment and sends workers only index pairs; the deprecated ``pickle``
    plane reproduces the pre-arena fork/COW behaviour for differential
    testing.

    With ``checkpoint_store`` (and a caller-chosen ``checkpoint_key``),
    completed chunks spill to disk as they finish and are served from disk
    on the next identically-chunked scan; the caller owns deleting the
    checkpoints once the surrounding run has fully succeeded.

    With ``tracer`` (a :class:`repro.obs.Tracer`), each chunk attaches a
    pre-measured child span to the caller's open span as its result
    arrives — workers cannot share the parent's tracer, so chunk timings
    cross the process boundary as telemetry and re-enter the trace here.
    The merged telemetry's ``wall_seconds`` is measured by this parent
    around the whole pass (summed worker clocks count concurrent work and
    are reported as ``cpu_seconds`` instead).
    """
    from repro.nids.engine import scan_stream

    started = time.perf_counter()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if checkpoint_store is not None and checkpoint_key is None:
        raise ValueError("checkpoint_store requires checkpoint_key")
    mode = resolve_transfer(transfer)
    break_even = parallel_threshold(threshold)
    items = list(sessions)
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (workers * CHUNKS_PER_WORKER)))
    bounds = chunk_bounds(len(items), chunk_size)
    if workers == 1 or len(bounds) <= 1 or len(items) < break_even:
        alerts, scanned, telemetry = scan_stream(ruleset, items)
        if workers > 1:
            # A parallel request served serially: the break-even policy
            # decided the pool could not pay for itself at this size.
            telemetry.fallback_serial = 1
        return alerts, scanned, telemetry

    if mode == "pickle":
        use_fork = "fork" in multiprocessing.get_all_start_methods()
        if use_fork:
            # Compile once in the parent; forked workers inherit the
            # compiled ruleset and the session list copy-on-write, so
            # tasks are just index pairs.
            ruleset._ensure_compiled()
            spawn_blob = b""
        else:  # pragma: no cover - exercised only on spawn-only platforms
            spawn_blob = pickle.dumps(ruleset, protocol=pickle.HIGHEST_PROTOCOL)
        scan_pool = _LegacyPool(
            ruleset, items, min(workers, len(bounds)), use_fork, spawn_blob
        )

        def _submit(pool, index: int, attempt: int):
            start, stop = bounds[index]
            if use_fork:
                return pool.submit(_scan_range, (index, attempt, start, stop))
            return pool.submit(  # pragma: no cover - spawn-only
                _scan_chunk, (index, attempt, items[start:stop])
            )

        arena = None
        transfer_seconds = arena_build_seconds = 0.0
        arena_bytes = 0
    else:
        # Arena plane: one serialization pass, then index pairs only.  The
        # compiled parent ruleset also serves the poison-chunk fallback.
        ruleset._ensure_compiled()
        clock = time.perf_counter()
        blob = pickle.dumps(ruleset, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.blake2b(blob, digest_size=16).hexdigest()
        transfer_seconds = time.perf_counter() - clock
        clock = time.perf_counter()
        arena = SessionArena.build(items, ruleset_blob=blob)
        arena_build_seconds = time.perf_counter() - clock
        arena_bytes = arena.nbytes
        worker_fault = _active_fault()
        if worker_fault is not None and worker_fault.kind == "scan_abort":
            worker_fault = None
        arena_name = arena.name
        scan_pool = _ScanPool(workers, dedicated=_fault_hook is not None)

        def _submit(pool, index: int, attempt: int):
            start, stop = bounds[index]
            return pool.submit(
                _scan_arena_chunk,
                (index, attempt, start, stop, arena_name, digest, worker_fault),
            )

    checkpoints: Optional[_ChunkCheckpoints] = None
    if checkpoint_store is not None:
        checkpoints = _ChunkCheckpoints(checkpoint_store, checkpoint_key, bounds)

    def _trace_chunk(index: int, result: ChunkResult, source: str) -> None:
        if tracer is None:
            return
        _rows, count, chunk_telemetry = result
        tracer.child(
            f"chunk-{index:05d}",
            duration=chunk_telemetry.scan_seconds,
            sessions=count,
            source=source,
        )

    results: Dict[int, ChunkResult] = {}
    checkpoint_hits = 0
    if checkpoints is not None:
        for index in range(len(bounds)):
            hit = checkpoints.load(index)
            if hit is not None:
                results[index] = hit
                checkpoint_hits += 1
                _trace_chunk(index, hit, "checkpoint")

    fault = _active_fault()
    abort_after = (
        fault.target if fault is not None and fault.kind == "scan_abort" else None
    )
    completed = 0  # chunks completed by this run (checkpoint hits excluded)

    failures: Dict[int, int] = {index: 0 for index in range(len(bounds))}
    attempts: Dict[int, int] = {index: 0 for index in range(len(bounds))}
    pending = [index for index in range(len(bounds)) if index not in results]
    poison: List[int] = []
    respawns = 0
    chunk_retries = 0

    def _record(
        index: int, result: ChunkResult, source: str = "computed"
    ) -> None:
        nonlocal completed
        results[index] = result
        if checkpoints is not None:
            checkpoints.save(index, *result)
        _trace_chunk(index, result, source)
        completed += 1
        if abort_after is not None and completed >= abort_after:
            raise ScanAborted(
                f"injected scan_abort after {completed} completed chunks"
            )

    try:
        hook_pending = True
        while pending:
            if respawns > MAX_POOL_RESPAWNS:
                # The pool keeps dying faster than it finishes work; stop
                # feeding it and scan the remainder in-process.
                poison.extend(pending)
                pending = []
                break
            if respawns:
                backoff = _backoff_seconds(respawns)
                if backoff:
                    time.sleep(backoff)
            broken = False
            pool = None
            try:
                pool = scan_pool.executor()
                if hook_pending:
                    hook_pending = False
                    hook = _after_fork_hook
                    if hook is not None:
                        hook()
                while pending and not broken:
                    futures = {}
                    submit_broke = False
                    for index in pending:
                        if attempts[index] > 0:
                            chunk_retries += 1
                        attempts[index] += 1
                        try:
                            futures[_submit(pool, index, attempts[index])] = (
                                index
                            )
                        except BrokenProcessPool:
                            submit_broke = True
                            break
                    if submit_broke:
                        # A warm worker crashed faster than the round could
                        # be submitted.  Charge every chunk in the round one
                        # attempt — the same accounting as futures dying
                        # with the pool — so a chunk that kills its worker
                        # every time still goes poison after exactly
                        # MAX_CHUNK_ATTEMPTS generations.
                        broken = True
                        still_pending: List[int] = []
                        for index in pending:
                            failures[index] += 1
                            if failures[index] >= MAX_CHUNK_ATTEMPTS:
                                poison.append(index)
                            else:
                                still_pending.append(index)
                        pending = still_pending
                        continue
                    failed_round: List[int] = []
                    for future in as_completed(futures):
                        index = futures[future]
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken = True
                            failures[index] += 1
                            failed_round.append(index)
                            continue
                        except Exception:
                            # Chunk-level failure: only this chunk is
                            # implicated; the pool (and every other
                            # future) is still healthy.
                            failures[index] += 1
                            failed_round.append(index)
                            continue
                        _record(index, result)
                    pending = []
                    for index in failed_round:
                        if failures[index] >= MAX_CHUNK_ATTEMPTS:
                            poison.append(index)
                        else:
                            pending.append(index)
            except BrokenProcessPool:
                # The pool died before/while accepting work; every
                # unfinished chunk stays pending.
                broken = True
            if broken:
                if pool is not None:
                    scan_pool.broken(pool)
                respawns += 1

        # Poison chunks (and everything stranded by a respawn limit) are
        # scanned serially in-process: slower, but immune to whatever
        # killed the pool, and byte-identical by construction.
        for index in sorted(poison):
            start, stop = bounds[index]
            chunk_alerts, count, chunk_telemetry = scan_stream(
                ruleset, items[start:stop]
            )
            _record(
                index,
                (_encode_alerts(chunk_alerts), count, chunk_telemetry),
                source="poison-serial",
            )
    finally:
        scan_pool.release()
        if arena is not None:
            # Unlink promptly, success or abort — killed runs are covered
            # by the finalizer and, past SIGKILL, the gc sweep.
            arena.close_and_unlink()

    from repro.nids.engine import ScanTelemetry

    clock = time.perf_counter()
    merged: List[Alert] = []
    scanned = 0
    telemetry = ScanTelemetry(engine=ruleset.prefilter_engine)
    for index in range(len(bounds)):
        rows, count, chunk_telemetry = results[index]
        merged.extend(_decode_alerts(rows))
        scanned += count
        telemetry.merge(chunk_telemetry)
    transfer_seconds += time.perf_counter() - clock
    telemetry.chunk_retries = chunk_retries
    telemetry.pool_respawns = respawns
    telemetry.poison_chunks = len(poison)
    telemetry.recovered_chunks = sum(
        1
        for index, count in failures.items()
        if count > 0 and index in results and index not in poison
    )
    telemetry.checkpoint_hits = checkpoint_hits
    telemetry.arena_bytes = arena_bytes
    telemetry.arena_build_seconds = arena_build_seconds
    telemetry.transfer_seconds = transfer_seconds
    telemetry.pool_reuses = 1 if getattr(scan_pool, "reused", False) else 0
    telemetry.fallback_serial = 0
    # Workers ran concurrently: their summed clocks are work (cpu_seconds),
    # not elapsed time.  Elapsed time is what this parent measured.
    telemetry.wall_seconds = time.perf_counter() - started
    return merged, scanned, telemetry
