"""Multiprocess post-facto scanning with crash recovery and checkpoints.

The study's NIDS pass is embarrassingly parallel: each stored session is
matched against the ruleset independently, and the per-session results are
merged back in session order.  This module partitions a session archive into
contiguous chunks, evaluates them in a :class:`ProcessPoolExecutor`, and
concatenates the per-chunk alert lists — so the merged output is *identical*
(same alerts, same order, same fields) to a serial scan of the same stream.

Transfer costs, not match work, dominate a naive pool scan, so two
optimisations keep the parallel path worthwhile:

* on platforms with ``fork`` (Linux), the ruleset is compiled and the
  session list pinned in the parent *before* the pool starts; workers
  inherit both via copy-on-write and receive only ``(start, stop)`` index
  pairs — no session ever crosses a pipe.  Elsewhere (``spawn``), the
  ruleset ships once per worker via the pool initializer (compiled there,
  never per chunk) and chunks ship as session lists;
* alerts return as plain tuples, which pickle several times faster than
  dataclass instances, and are rebuilt in the parent.

Fault tolerance (the recovery protocol):

* chunks are submitted as individual futures, so one chunk's outcome never
  implicates another's.  A chunk-level exception marks only that chunk
  failed; a worker *death* (OOM kill, segfault, ``os._exit``) breaks the
  whole pool, which is respawned — bounded by :data:`MAX_POOL_RESPAWNS`,
  with exponential backoff — and only the still-unfinished chunks are
  resubmitted;
* a chunk that fails :data:`MAX_CHUNK_ATTEMPTS` times is a **poison
  chunk**: it is taken out of the pool entirely and scanned serially
  in-process, so the merged output stays byte-identical to a serial scan
  no matter how the pool misbehaves;
* with a checkpoint store attached, every completed chunk spills its result
  to disk (:mod:`repro.cache.checkpoint`); a killed process rescans only
  the chunks that never checkpointed on its next run.

Recovery work is counted on the returned :class:`ScanTelemetry`
(``chunk_retries``, ``pool_respawns``, ``recovered_chunks``,
``poison_chunks``, ``checkpoint_hits``).

Deterministic fault injection makes all of this testable without real OOMs:
``REPRO_FAULT=worker_crash:<chunk>[:<times>]`` kills the worker scanning
that chunk on its first ``times`` attempts, ``chunk_error:<chunk>[:<times>]``
raises inside it instead, and ``scan_abort:<n>`` aborts the *parent* after
``n`` chunks have completed (simulating a killed run whose checkpoints
survive).  Tests can also install an in-process callable via
:data:`_fault_hook`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.net.pcapstore import _TIME_FORMAT
from repro.net.session import TcpSession
from repro.nids.ruleset import Alert, Ruleset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.checkpoint import CheckpointStore
    from repro.nids.engine import ScanTelemetry

#: Chunks handed to the pool per worker: >1 so a slow chunk (one dense with
#: candidate-heavy payloads) does not leave the other workers idle at the
#: end of the scan.
CHUNKS_PER_WORKER = 4

#: Pool attempts per chunk before it is declared poison and scanned
#: serially in-process.
MAX_CHUNK_ATTEMPTS = 2

#: Pool generations (original + respawns) before the remaining chunks all
#: fall back to the in-process serial scan.
MAX_POOL_RESPAWNS = 3

#: Exponential backoff between pool respawns: base * 2**(respawn-1),
#: capped.  ``REPRO_RETRY_BACKOFF`` overrides the base (tests set it to 0).
BACKOFF_BASE_SECONDS = 0.05
BACKOFF_MAX_SECONDS = 2.0

#: How long the parent waits for every worker to fork and reach the warm-up
#: barrier before declaring the pool broken.
WARMUP_TIMEOUT_SECONDS = 60.0

_worker_ruleset: Optional[Ruleset] = None
#: (ruleset, sessions) pinned for fork-inherited workers.  Module-global by
#: necessity — forked children read it from their memory snapshot — so
#: :data:`_fork_lock` serialises the pin → fork window: without it, two
#: ``DetectionEngine.scan`` calls overlapping from threads could fork
#: workers that see the *other* scan's session list.  The lock is released
#: (and the pin dropped) as soon as every worker has forked — the executor
#: never forks again for a pool once all ``max_workers`` processes exist —
#: so concurrent scans overlap for the whole scan, not just the fork window.
_fork_state: Optional[Tuple[Ruleset, List[TcpSession]]] = None
_fork_barrier = None
_fork_lock = threading.Lock()

#: Test hook: called in the parent immediately after the fork window closes
#: (workers forked, pin dropped, lock released) and before any chunk is
#: scanned.  Lets tests assert that two threaded scans genuinely overlap.
_after_fork_hook: Optional[Callable[[], None]] = None

#: Fault-injection hook: called in each worker as ``hook(chunk_index,
#: attempt)`` before the chunk is scanned; it may raise or ``os._exit``.
#: When None, ``REPRO_FAULT`` (see :func:`parse_fault`) is consulted
#: instead.  Inherited by forked workers like the rest of module state.
_fault_hook: Optional[Callable[[int, int], None]] = None

AlertTuple = tuple


class InjectedFault(RuntimeError):
    """A chunk-level failure raised by the fault-injection hook."""


class ScanAborted(RuntimeError):
    """The parent-side ``scan_abort`` fault fired (simulated kill)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``REPRO_FAULT`` directive."""

    kind: str  #: ``worker_crash`` | ``chunk_error`` | ``scan_abort``
    target: int  #: chunk index (crash/error) or completed-chunk count (abort)
    times: int = 1  #: how many attempts the fault fires on (crash/error)


def parse_fault(text: Optional[str]) -> Optional[FaultSpec]:
    """Parse ``kind:target[:times]`` fault syntax (None/empty → no fault).

    >>> parse_fault("worker_crash:3")
    FaultSpec(kind='worker_crash', target=3, times=1)
    >>> parse_fault("chunk_error:0:2").times
    2
    >>> parse_fault(None) is None
    True
    """
    if not text:
        return None
    parts = text.split(":")
    if parts[0] not in ("worker_crash", "chunk_error", "scan_abort"):
        raise ValueError(f"unknown fault kind in {text!r}")
    if len(parts) not in (2, 3):
        raise ValueError(f"malformed fault spec {text!r}")
    try:
        target = int(parts[1])
        times = int(parts[2]) if len(parts) == 3 else 1
    except ValueError:
        raise ValueError(f"malformed fault spec {text!r}") from None
    return FaultSpec(kind=parts[0], target=target, times=times)


def _active_fault() -> Optional[FaultSpec]:
    return parse_fault(os.environ.get("REPRO_FAULT"))


def _inject_worker_fault(chunk_index: int, attempt: int) -> None:
    """Worker-side fault point, reached before a chunk is scanned."""
    hook = _fault_hook
    if hook is not None:
        hook(chunk_index, attempt)
        return
    spec = _active_fault()
    if spec is None or spec.kind == "scan_abort":
        return
    if spec.target == chunk_index and attempt <= spec.times:
        if spec.kind == "worker_crash":
            # Simulate an OOM kill / segfault: die without cleanup, which
            # breaks the whole pool, not just this future.
            os._exit(99)
        raise InjectedFault(
            f"injected chunk_error on chunk {chunk_index} attempt {attempt}"
        )


def _encode_alerts(alerts: List[Alert]) -> List[AlertTuple]:
    return [
        (
            alert.session_id,
            alert.timestamp,
            alert.sid,
            alert.cve_id,
            alert.rule_published,
            alert.dst_ip,
            alert.dst_port,
            alert.src_ip,
        )
        for alert in alerts
    ]


def _decode_alerts(rows: List[AlertTuple]) -> List[Alert]:
    return [
        Alert(
            session_id=row[0],
            timestamp=row[1],
            sid=row[2],
            cve_id=row[3],
            rule_published=row[4],
            dst_ip=row[5],
            dst_port=row[6],
            src_ip=row[7],
        )
        for row in rows
    ]


def _rows_to_json(rows: List[AlertTuple]) -> List[list]:
    """Alert tuples → JSON-native lists (timestamps to strings)."""
    return [
        [
            row[0],
            row[1].strftime(_TIME_FORMAT),
            row[2],
            row[3],
            row[4].strftime(_TIME_FORMAT),
            row[5],
            row[6],
            row[7],
        ]
        for row in rows
    ]


def _rows_from_json(rows: List[list]) -> List[AlertTuple]:
    return [
        (
            row[0],
            datetime.strptime(row[1], _TIME_FORMAT),
            row[2],
            row[3],
            datetime.strptime(row[4], _TIME_FORMAT),
            row[5],
            row[6],
            row[7],
        )
        for row in rows
    ]


def _init_worker(ruleset_blob: bytes) -> None:
    """Spawn-path pool initializer: install this worker's compiled ruleset."""
    global _worker_ruleset
    ruleset = pickle.loads(ruleset_blob)
    ruleset._ensure_compiled()
    _worker_ruleset = ruleset


def _warmup() -> None:
    """Fork-path warm-up task: park this worker on the fork barrier.

    One warm-up task is submitted per pool slot; each blocks its worker
    until every worker (plus the parent) has arrived, which proves all
    ``max_workers`` processes forked while the fork state was pinned.
    """
    barrier = _fork_barrier
    if barrier is not None:
        barrier.wait(WARMUP_TIMEOUT_SECONDS)


ChunkResult = Tuple[List[AlertTuple], int, "ScanTelemetry"]


def _scan_chunk(
    task: Tuple[int, int, Sequence[TcpSession]]
) -> ChunkResult:
    """Spawn path: scan one shipped chunk with the worker-local ruleset."""
    from repro.nids.engine import scan_stream

    chunk_index, attempt, sessions = task
    if _worker_ruleset is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker ruleset not initialised")
    _inject_worker_fault(chunk_index, attempt)
    alerts, scanned, telemetry = scan_stream(_worker_ruleset, sessions)
    return _encode_alerts(alerts), scanned, telemetry


def _scan_range(task: Tuple[int, int, int, int]) -> ChunkResult:
    """Fork path: scan a slice of the inherited session list."""
    from repro.nids.engine import scan_stream

    chunk_index, attempt, start, stop = task
    if _fork_state is None:  # pragma: no cover - set before the pool forks
        raise RuntimeError("fork state not pinned")
    _inject_worker_fault(chunk_index, attempt)
    ruleset, sessions = _fork_state
    alerts, scanned, telemetry = scan_stream(ruleset, sessions[start:stop])
    return _encode_alerts(alerts), scanned, telemetry


def chunk_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` slices covering ``range(total)``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


@contextmanager
def _forked_pool(
    ruleset: Ruleset, items: List[TcpSession], max_workers: int
) -> Iterator[ProcessPoolExecutor]:
    """A fork-context pool whose workers all inherit ``(ruleset, items)``.

    :data:`_fork_lock` covers only the pin → fork window: the state is
    pinned, the pool created, and one warm-up task submitted per slot; once
    every worker has reached the warm-up barrier, all ``max_workers``
    processes exist (the executor never forks again for this pool), so the
    pin is dropped and the lock released before any chunk is scheduled.
    """
    global _fork_state, _fork_barrier
    ctx = multiprocessing.get_context("fork")
    pool: Optional[ProcessPoolExecutor] = None
    try:
        with _fork_lock:
            _fork_state = (ruleset, items)
            _fork_barrier = ctx.Barrier(max_workers + 1)
            try:
                pool = ProcessPoolExecutor(
                    max_workers=max_workers, mp_context=ctx
                )
                warmups = [pool.submit(_warmup) for _ in range(max_workers)]
                try:
                    _fork_barrier.wait(WARMUP_TIMEOUT_SECONDS)
                except threading.BrokenBarrierError:
                    raise BrokenProcessPool(
                        "workers failed to fork within the warm-up window"
                    ) from None
                for warmup in warmups:
                    warmup.result()
            finally:
                _fork_state = None
                _fork_barrier = None
        hook = _after_fork_hook
        if hook is not None:
            hook()
        yield pool
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


@contextmanager
def _spawned_pool(
    ruleset_blob: bytes, max_workers: int
) -> Iterator[ProcessPoolExecutor]:  # pragma: no cover - spawn-only platforms
    pool = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_init_worker,
        initargs=(ruleset_blob,),
    )
    try:
        yield pool
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


class _ChunkCheckpoints:
    """Per-chunk result spill for one scan's chunking.

    Blobs live under the caller's key (so deleting that key reclaims the
    whole run's recovery state at once) with the exact chunk bounds folded
    into each blob's name, so results can only ever be reused by a scan
    that partitions the same stream identically (a different
    ``workers``/``chunk_size`` simply misses and rescans).
    """

    def __init__(
        self,
        store: "CheckpointStore",
        key: str,
        bounds: List[Tuple[int, int]],
    ) -> None:
        digest = hashlib.blake2b(repr(bounds).encode("ascii"), digest_size=6)
        self.store = store
        self.key = key
        self.bounds = bounds
        self._chunking = digest.hexdigest()

    def _name(self, index: int) -> str:
        return f"chunk-{self._chunking}-{index:05d}"

    def load(self, index: int) -> Optional[ChunkResult]:
        from repro.nids.engine import ScanTelemetry

        payload = self.store.load(self.key, self._name(index))
        if payload is None:
            return None
        if payload.get("bounds") != list(self.bounds[index]):
            return None  # pragma: no cover - name folds bounds already
        return (
            _rows_from_json(payload["rows"]),
            payload["scanned"],
            ScanTelemetry.from_dict(payload["telemetry"]),
        )

    def save(
        self, index: int, rows: List[AlertTuple], scanned: int, telemetry
    ) -> None:
        self.store.save(
            self.key,
            self._name(index),
            {
                "bounds": list(self.bounds[index]),
                "rows": _rows_to_json(rows),
                "scanned": scanned,
                "telemetry": telemetry.as_dict(),
            },
        )


def _backoff_seconds(respawn: int) -> float:
    base = BACKOFF_BASE_SECONDS
    env = os.environ.get("REPRO_RETRY_BACKOFF")
    if env is not None:
        base = float(env)
    if base <= 0:
        return 0.0
    return min(base * (2 ** (respawn - 1)), BACKOFF_MAX_SECONDS)


def parallel_scan(
    ruleset: Ruleset,
    sessions: Iterable[TcpSession],
    *,
    workers: int,
    chunk_size: Optional[int] = None,
    checkpoint_store: Optional["CheckpointStore"] = None,
    checkpoint_key: Optional[str] = None,
    tracer=None,
) -> Tuple[List[Alert], int, "ScanTelemetry"]:
    """Scan sessions across ``workers`` processes, surviving worker death.

    Returns ``(alerts, sessions_scanned, telemetry)`` with alerts in
    session order — identical to what a serial :meth:`Ruleset.match_session`
    sweep over the same stream retains — and the per-worker telemetry merged
    in chunk order, recovery counters included.  Falls back to an
    in-process scan when the stream is too small to be worth a pool.

    With ``checkpoint_store`` (and a caller-chosen ``checkpoint_key``),
    completed chunks spill to disk as they finish and are served from disk
    on the next identically-chunked scan; the caller owns deleting the
    checkpoints once the surrounding run has fully succeeded.

    With ``tracer`` (a :class:`repro.obs.Tracer`), each chunk attaches a
    pre-measured child span to the caller's open span as its result
    arrives — workers cannot share the parent's tracer, so chunk timings
    cross the process boundary as telemetry and re-enter the trace here.
    The merged telemetry's ``wall_seconds`` is measured by this parent
    around the whole pass (summed worker clocks count concurrent work and
    are reported as ``cpu_seconds`` instead).
    """
    from repro.nids.engine import ScanTelemetry, scan_stream

    started = time.perf_counter()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if checkpoint_store is not None and checkpoint_key is None:
        raise ValueError("checkpoint_store requires checkpoint_key")
    items = list(sessions)
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (workers * CHUNKS_PER_WORKER)))
    bounds = chunk_bounds(len(items), chunk_size)
    if workers == 1 or len(bounds) <= 1:
        return scan_stream(ruleset, items)

    checkpoints: Optional[_ChunkCheckpoints] = None
    if checkpoint_store is not None:
        checkpoints = _ChunkCheckpoints(checkpoint_store, checkpoint_key, bounds)

    def _trace_chunk(index: int, result: ChunkResult, source: str) -> None:
        if tracer is None:
            return
        _rows, count, chunk_telemetry = result
        tracer.child(
            f"chunk-{index:05d}",
            duration=chunk_telemetry.scan_seconds,
            sessions=count,
            source=source,
        )

    results: Dict[int, ChunkResult] = {}
    checkpoint_hits = 0
    if checkpoints is not None:
        for index in range(len(bounds)):
            hit = checkpoints.load(index)
            if hit is not None:
                results[index] = hit
                checkpoint_hits += 1
                _trace_chunk(index, hit, "checkpoint")

    fault = _active_fault()
    abort_after = (
        fault.target if fault is not None and fault.kind == "scan_abort" else None
    )
    completed = 0  # chunks completed by this run (checkpoint hits excluded)

    failures: Dict[int, int] = {index: 0 for index in range(len(bounds))}
    attempts: Dict[int, int] = {index: 0 for index in range(len(bounds))}
    pending = [index for index in range(len(bounds)) if index not in results]
    poison: List[int] = []
    respawns = 0
    chunk_retries = 0

    use_fork = "fork" in multiprocessing.get_all_start_methods()
    if use_fork:
        # Compile once in the parent; forked workers inherit the compiled
        # ruleset and the session list copy-on-write, so tasks are just
        # index pairs.
        ruleset._ensure_compiled()
        spawn_blob = b""
    else:  # pragma: no cover - exercised only on spawn-only platforms
        spawn_blob = pickle.dumps(ruleset, protocol=pickle.HIGHEST_PROTOCOL)

    def _submit(pool: ProcessPoolExecutor, index: int):
        attempts[index] += 1
        if use_fork:
            start, stop = bounds[index]
            return pool.submit(_scan_range, (index, attempts[index], start, stop))
        start, stop = bounds[index]  # pragma: no cover - spawn-only
        return pool.submit(  # pragma: no cover - spawn-only
            _scan_chunk, (index, attempts[index], items[start:stop])
        )

    def _record(
        index: int, result: ChunkResult, source: str = "computed"
    ) -> None:
        nonlocal completed
        results[index] = result
        if checkpoints is not None:
            checkpoints.save(index, *result)
        _trace_chunk(index, result, source)
        completed += 1
        if abort_after is not None and completed >= abort_after:
            raise ScanAborted(
                f"injected scan_abort after {completed} completed chunks"
            )

    while pending:
        if respawns > MAX_POOL_RESPAWNS:
            # The pool keeps dying faster than it finishes work; stop
            # feeding it and scan the remainder in-process.
            poison.extend(pending)
            pending = []
            break
        if respawns:
            backoff = _backoff_seconds(respawns)
            if backoff:
                time.sleep(backoff)
        broken = False
        pool_cm = (
            _forked_pool(ruleset, items, min(workers, len(pending)))
            if use_fork
            else _spawned_pool(spawn_blob, min(workers, len(pending)))
        )
        try:
            with pool_cm as pool:
                while pending and not broken:
                    futures = {}
                    for index in pending:
                        if attempts[index] > 0:
                            chunk_retries += 1
                        futures[_submit(pool, index)] = index
                    failed_round: List[int] = []
                    for future in as_completed(futures):
                        index = futures[future]
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken = True
                            failures[index] += 1
                            failed_round.append(index)
                            continue
                        except Exception:
                            # Chunk-level failure: only this chunk is
                            # implicated; the pool (and every other
                            # future) is still healthy.
                            failures[index] += 1
                            failed_round.append(index)
                            continue
                        _record(index, result)
                    pending = []
                    for index in failed_round:
                        if failures[index] >= MAX_CHUNK_ATTEMPTS:
                            poison.append(index)
                        else:
                            pending.append(index)
        except BrokenProcessPool:
            # The pool died before/while accepting work (e.g. during the
            # warm-up barrier); every unfinished chunk stays pending.
            broken = True
        if broken:
            respawns += 1

    # Poison chunks (and everything stranded by a respawn limit) are scanned
    # serially in-process: slower, but immune to whatever killed the pool,
    # and byte-identical by construction.
    for index in sorted(poison):
        start, stop = bounds[index]
        chunk_alerts, count, chunk_telemetry = scan_stream(
            ruleset, items[start:stop]
        )
        _record(
            index,
            (_encode_alerts(chunk_alerts), count, chunk_telemetry),
            source="poison-serial",
        )

    merged: List[Alert] = []
    scanned = 0
    telemetry = ScanTelemetry(engine=ruleset.prefilter_engine)
    for index in range(len(bounds)):
        rows, count, chunk_telemetry = results[index]
        merged.extend(_decode_alerts(rows))
        scanned += count
        telemetry.merge(chunk_telemetry)
    telemetry.chunk_retries = chunk_retries
    telemetry.pool_respawns = respawns
    telemetry.poison_chunks = len(poison)
    telemetry.recovered_chunks = sum(
        1
        for index, count in failures.items()
        if count > 0 and index in results and index not in poison
    )
    telemetry.checkpoint_hits = checkpoint_hits
    # Workers ran concurrently: their summed clocks are work (cpu_seconds),
    # not elapsed time.  Elapsed time is what this parent measured.
    telemetry.wall_seconds = time.perf_counter() - started
    return merged, scanned, telemetry
