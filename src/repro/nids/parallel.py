"""Multiprocess post-facto scanning.

The study's NIDS pass is embarrassingly parallel: each stored session is
matched against the ruleset independently, and the per-session results are
merged back in session order.  This module partitions a session archive into
contiguous chunks, evaluates them in a :class:`ProcessPoolExecutor`, and
concatenates the per-chunk alert lists — so the merged output is *identical*
(same alerts, same order, same fields) to a serial scan of the same stream.

Transfer costs, not match work, dominate a naive pool scan, so two
optimisations keep the parallel path worthwhile:

* on platforms with ``fork`` (Linux), the ruleset is compiled and the
  session list pinned in the parent *before* the pool starts; workers
  inherit both via copy-on-write and receive only ``(start, stop)`` index
  pairs — no session ever crosses a pipe.  Elsewhere (``spawn``), the
  ruleset ships once per worker via the pool initializer (compiled there,
  never per chunk) and chunks ship as session lists;
* alerts return as plain tuples, which pickle several times faster than
  dataclass instances, and are rebuilt in the parent.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.net.session import TcpSession
from repro.nids.ruleset import Alert, Ruleset

#: Chunks handed to the pool per worker: >1 so a slow chunk (one dense with
#: candidate-heavy payloads) does not leave the other workers idle at the
#: end of the scan.
CHUNKS_PER_WORKER = 4

_worker_ruleset: Optional[Ruleset] = None
#: (ruleset, sessions) pinned for fork-inherited workers.  Module-global by
#: necessity — forked children read it from their memory snapshot — so
#: :data:`_fork_lock` serialises the pin → fork → scan → unpin section:
#: without it, two ``DetectionEngine.scan`` calls overlapping from threads
#: could fork workers that see the *other* scan's session list.
_fork_state: Optional[Tuple[Ruleset, List[TcpSession]]] = None
_fork_lock = threading.Lock()

AlertTuple = tuple


def _encode_alerts(alerts: List[Alert]) -> List[AlertTuple]:
    return [
        (
            alert.session_id,
            alert.timestamp,
            alert.sid,
            alert.cve_id,
            alert.rule_published,
            alert.dst_ip,
            alert.dst_port,
            alert.src_ip,
        )
        for alert in alerts
    ]


def _decode_alerts(rows: List[AlertTuple]) -> List[Alert]:
    return [
        Alert(
            session_id=row[0],
            timestamp=row[1],
            sid=row[2],
            cve_id=row[3],
            rule_published=row[4],
            dst_ip=row[5],
            dst_port=row[6],
            src_ip=row[7],
        )
        for row in rows
    ]


def _init_worker(ruleset_blob: bytes) -> None:
    """Spawn-path pool initializer: install this worker's compiled ruleset."""
    global _worker_ruleset
    ruleset = pickle.loads(ruleset_blob)
    ruleset._ensure_compiled()
    _worker_ruleset = ruleset


def _scan_chunk(
    sessions: Sequence[TcpSession],
) -> Tuple[List[AlertTuple], int, "ScanTelemetry"]:
    """Spawn path: scan one shipped chunk with the worker-local ruleset."""
    from repro.nids.engine import scan_stream

    if _worker_ruleset is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker ruleset not initialised")
    alerts, scanned, telemetry = scan_stream(_worker_ruleset, sessions)
    return _encode_alerts(alerts), scanned, telemetry


def _scan_range(
    bounds: Tuple[int, int]
) -> Tuple[List[AlertTuple], int, "ScanTelemetry"]:
    """Fork path: scan a slice of the inherited session list."""
    from repro.nids.engine import scan_stream

    if _fork_state is None:  # pragma: no cover - set before the pool forks
        raise RuntimeError("fork state not pinned")
    ruleset, sessions = _fork_state
    start, stop = bounds
    alerts, scanned, telemetry = scan_stream(ruleset, sessions[start:stop])
    return _encode_alerts(alerts), scanned, telemetry


def chunk_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` slices covering ``range(total)``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


def parallel_scan(
    ruleset: Ruleset,
    sessions: Iterable[TcpSession],
    *,
    workers: int,
    chunk_size: Optional[int] = None,
) -> Tuple[List[Alert], int, "ScanTelemetry"]:
    """Scan sessions across ``workers`` processes.

    Returns ``(alerts, sessions_scanned, telemetry)`` with alerts in
    session order — identical to what a serial :meth:`Ruleset.match_session`
    sweep over the same stream retains — and the per-worker telemetry merged
    in chunk order.  Falls back to an in-process scan when the stream is too
    small to be worth a pool.
    """
    from repro.nids.engine import ScanTelemetry, scan_stream

    global _fork_state
    if workers < 1:
        raise ValueError("workers must be >= 1")
    items = list(sessions)
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (workers * CHUNKS_PER_WORKER)))
    bounds = chunk_bounds(len(items), chunk_size)
    if workers == 1 or len(bounds) <= 1:
        return scan_stream(ruleset, items)

    use_fork = "fork" in multiprocessing.get_all_start_methods()
    merged: List[Alert] = []
    scanned = 0
    telemetry = ScanTelemetry(engine=ruleset.prefilter_engine)
    if use_fork:
        # Compile once in the parent; forked workers inherit the compiled
        # ruleset and the session list copy-on-write, so tasks are just
        # index pairs.  The lock keeps a concurrent scan from repinning
        # _fork_state while this pool's workers are being forked.
        ruleset._ensure_compiled()
        with _fork_lock:
            _fork_state = (ruleset, items)
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(bounds)),
                    mp_context=multiprocessing.get_context("fork"),
                ) as pool:
                    for rows, count, chunk_telemetry in pool.map(_scan_range, bounds):
                        merged.extend(_decode_alerts(rows))
                        scanned += count
                        telemetry.merge(chunk_telemetry)
            finally:
                _fork_state = None
    else:  # pragma: no cover - exercised only on spawn-only platforms
        blob = pickle.dumps(ruleset, protocol=pickle.HIGHEST_PROTOCOL)
        chunks = [items[start:stop] for start, stop in bounds]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            initializer=_init_worker,
            initargs=(blob,),
        ) as pool:
            for rows, count, chunk_telemetry in pool.map(_scan_chunk, chunks):
                merged.extend(_decode_alerts(rows))
                scanned += count
                telemetry.merge(chunk_telemetry)
    return merged, scanned, telemetry
