"""Ruleset management: publication dates, port-insensitive rewriting, and
earliest-published-signature retention.

The study evaluates the full ruleset over each session and keeps only the
earliest-*published* matching signature (Section 3.1) — this attributes a
session to the first defense that could ever have caught it, which is what
the D (fix deployed) comparison needs.

Matching is prefiltered the way real Snort does it: a multi-pattern search
over every rule's *fast pattern* scans each payload once and nominates
candidate rules; only candidates get full option evaluation.  Rules without
a usable fast pattern (pure-pcre rules) are always candidates.

Two interchangeable prefilter engines are provided (selected by the
``prefilter`` constructor argument, the ``REPRO_PREFILTER`` environment
variable, or the default ``"regex"``):

* ``"regex"`` — :class:`repro.nids.prefilter.RegexPrefilter`, which drives
  the scan through CPython's C-implemented ``re`` engine.  This engine also
  enables the *ordered lazy* retention path: candidate rules are walked in
  ascending publication order (a ``heapq.merge`` across per-pattern rule
  lists pre-sorted at compile time), so the first full match *is* the
  earliest-published one and evaluation stops there.  Rule option lists are
  flattened into positional step tuples (:func:`_compile_plan`) evaluated
  by :func:`_eval_plan` with int-indexed buffers and pre-lowered ``nocase``
  needles.
* ``"aho"`` — the pure-Python :class:`repro.nids.automaton.AhoCorasick`
  reference implementation with the original evaluate-every-candidate
  retention loop, kept as the differential baseline.

Both engines nominate identical candidate sets and retain identical alerts
(``tests/test_prefilter.py``, ``tests/test_scan_equivalence.py``).
"""

from __future__ import annotations

import heapq
import os
from array import array
from dataclasses import dataclass
from datetime import datetime
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.session import TcpSession
from repro.nids.automaton import AhoCorasick
from repro.nids.matcher import (
    _BUFFER_INDEX,
    URI_INDEX,
    SessionBuffers,
    _compiled as _compiled_pcre,
    match_rule,
)
from repro.nids.prefilter import DEFAULT_SHARD_SIZE, RegexPrefilter, ShardedPrefilter
from repro.nids.rule import ContentMatch, IsDataAt, PcreMatch, Rule, SizeBound

#: Environment variable naming the prefilter engine (``regex`` or ``aho``).
#: An explicit ``Ruleset(prefilter=...)`` argument wins over the variable.
PREFILTER_ENV = "REPRO_PREFILTER"

#: Valid prefilter engine names.
PREFILTER_ENGINES = ("regex", "aho")

#: Environment variable forcing a prefilter shard count.  ``1`` forces the
#: monolithic engine; ``N > 1`` forces N shards; unset/empty means *auto*
#: (shard only past :data:`AUTO_SHARD_MIN_PATTERNS` distinct fast patterns).
#: An explicit ``Ruleset(shards=...)`` argument wins over the variable.
PREFILTER_SHARDS_ENV = "REPRO_PREFILTER_SHARDS"

#: Auto-sharding kicks in at this many *distinct* fast patterns.  Below it a
#: single compiled engine is cheap and marginally faster to search; above it
#: the monolithic compile dominates first-scan latency, and lazy per-shard
#: compilation amortises it across the scan (see DESIGN.md §14 break-even).
AUTO_SHARD_MIN_PATTERNS = 4096


def resolve_prefilter_engine(prefilter: Optional[str] = None) -> str:
    """The engine to use: explicit argument, else environment, else regex."""
    engine = prefilter if prefilter is not None else os.environ.get(PREFILTER_ENV)
    engine = (engine or "regex").lower()
    if engine not in PREFILTER_ENGINES:
        raise ValueError(
            f"unknown prefilter engine {engine!r}; "
            f"expected one of {PREFILTER_ENGINES}"
        )
    return engine


def resolve_prefilter_shards(shards: Optional[int] = None) -> Optional[int]:
    """The shard policy: explicit argument, else environment, else auto.

    Returns ``None`` for auto (size-based), ``1`` for forced-monolithic, or
    a forced shard count ``>= 2``.
    """
    if shards is None:
        raw = os.environ.get(PREFILTER_SHARDS_ENV, "").strip()
        if not raw:
            return None
        try:
            shards = int(raw)
        except ValueError:
            raise ValueError(
                f"{PREFILTER_SHARDS_ENV} must be an integer, got {raw!r}"
            ) from None
    if shards < 1:
        raise ValueError(f"prefilter shards must be >= 1, got {shards}")
    return shards


@dataclass(frozen=True)
class Alert:
    """One retained detection: a session matched a signature."""

    session_id: int
    timestamp: datetime
    sid: int
    cve_id: Optional[str]
    rule_published: datetime
    dst_ip: int
    dst_port: int
    src_ip: int

    @property
    def pre_publication(self) -> bool:
        """Whether the traffic predates the signature's publication —
        only discoverable because evaluation is post-facto."""
        return self.timestamp < self.rule_published


# -- compiled match plans ------------------------------------------------------
#
# ``match_rule`` re-dispatches on option dataclass types and enum buffers for
# every candidate of every session.  The plan compiler flattens each rule's
# option list once, at ruleset compile time, into positional tuples with the
# per-option constants precomputed (buffer index, lowered nocase needle,
# compiled pcre), leaving ``_eval_plan`` a branch on a small int opcode.

_OP_CONTENT, _OP_PCRE, _OP_SIZE, _OP_ISDATAAT = 0, 1, 2, 3
_N_BUFFERS = len(_BUFFER_INDEX)


def _compile_plan(rule: Rule) -> Tuple[tuple, ...]:
    """Flatten a rule's options into step tuples for :func:`_eval_plan`."""
    steps: List[tuple] = []
    for option in rule.options:
        if isinstance(option, SizeBound):
            steps.append((_OP_SIZE, option.kind == "dsize", option))
        elif isinstance(option, IsDataAt):
            steps.append(
                (_OP_ISDATAAT, option.offset, option.relative, option.negated)
            )
        elif isinstance(option, ContentMatch):
            steps.append(
                (
                    _OP_CONTENT,
                    _BUFFER_INDEX[option.buffer],
                    option.pattern.lower() if option.nocase else option.pattern,
                    option.nocase,
                    option.negated,
                    option.offset or 0,
                    option.depth,
                    option.distance or 0,
                    option.within,
                    option.is_relative,
                )
            )
        elif isinstance(option, PcreMatch):
            steps.append(
                (
                    _OP_PCRE,
                    _BUFFER_INDEX[option.buffer],
                    _compiled_pcre(option.pattern, option.flags),
                    option.negated,
                )
            )
        else:  # pragma: no cover - AST is closed
            raise AssertionError(f"unknown option type {option!r}")
    return tuple(steps)


def _eval_plan(steps: Tuple[tuple, ...], buffers: SessionBuffers) -> bool:
    """Evaluate a compiled plan against one session's buffers.

    Semantically identical to :func:`repro.nids.matcher.match_rule` minus
    the port constraints, which the caller hoists (the study's default is
    port-insensitive, where they vanish entirely).
    """
    anchors = [0] * _N_BUFFERS
    last = 0  # RAW
    for step in steps:
        op = step[0]
        if op == _OP_CONTENT:
            (
                _,
                buf,
                needle,
                nocase,
                negated,
                offset,
                depth,
                distance,
                within,
                relative,
            ) = step
            haystack = (
                buffers.lowered_index(buf) if nocase else buffers.get_index(buf)
            )
            if haystack is None:
                # HTTP buffer requested but the payload is not HTTP: a
                # positive option cannot match; a negated one trivially holds.
                if negated:
                    continue
                return False
            size = len(haystack)
            if relative:
                start = anchors[buf] + distance
                end = start + within if within is not None else size
            else:
                start = offset
                end = start + depth if depth is not None else size
            if start < 0 or start > size:
                found = -1
            else:
                found = haystack.find(needle, start, end if end < size else size)
            if negated:
                if found >= 0:
                    return False
                continue
            if found < 0:
                return False
            anchors[buf] = found + len(needle)
            last = buf
        elif op == _OP_PCRE:
            _, buf, regex, negated = step
            haystack = buffers.get_index(buf)
            if haystack is None:
                if negated:
                    continue
                return False
            found = regex.search(haystack)
            if negated:
                if found is not None:
                    return False
                continue
            if found is None:
                return False
            anchors[buf] = found.end()
            last = buf
        elif op == _OP_SIZE:
            _, is_dsize, option = step
            if is_dsize:
                size = len(buffers.raw)
            else:  # urilen
                uri = buffers.get_index(URI_INDEX)
                if uri is None:
                    return False
                size = len(uri)
            if not option.matches(size):
                return False
        else:  # _OP_ISDATAAT
            _, offset, relative, negated = step
            haystack = buffers.get_index(last)
            if haystack is None:
                return False
            position = offset + anchors[last] if relative else offset
            if (position < len(haystack)) == negated:
                return False
    return True


class Ruleset:
    """A set of rules with publication dates.

    ``port_insensitive`` (default True, per the paper) rewrites every rule
    to drop port constraints before matching.  ``prefilter`` selects the
    fast-pattern engine (see :func:`resolve_prefilter_engine`).  ``shards``
    selects the prefilter shard policy (see
    :func:`resolve_prefilter_shards`): at Snort-scale rule counts the fast
    patterns are partitioned across lazily compiled shards, which nominate
    the same candidate groups as the monolithic engine — the downstream
    publication-ordered merge is shard-agnostic, so alerts are
    byte-identical either way (``tests/test_rule_scale.py``).
    """

    def __init__(
        self,
        *,
        port_insensitive: bool = True,
        prefilter: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> None:
        self._rules: List[Tuple[Rule, datetime]] = []
        self._sid_index: Dict[int, int] = {}
        self._port_insensitive = port_insensitive
        self._engine = resolve_prefilter_engine(prefilter)
        self._shards = resolve_prefilter_shards(shards)
        self._fast_patterns: List[Optional[bytes]] = []
        self._automaton: Optional[AhoCorasick] = None
        self._prefilter: Optional[RegexPrefilter] = None
        self._sharded: Optional[ShardedPrefilter] = None
        self._pattern_rules: List[List[int]] = []
        self._unfiltered: List[int] = []
        # Ordered fast-path tables, rebuilt by _compile().
        self._groups: List["array[int]"] = []
        self._unfiltered_ordered: "array[int]" = array("l")
        self._rank: "array[int]" = array("l")
        self._plans: List[Tuple[tuple, ...]] = []
        self._alert_meta: List[Tuple[int, Optional[str], datetime]] = []
        self._compiled = False

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> List[Rule]:
        return [rule for rule, _ in self._rules]

    @property
    def prefilter_engine(self) -> str:
        """Which fast-pattern engine this ruleset matches with."""
        return self._engine

    @property
    def port_insensitive(self) -> bool:
        """Whether rules were rewritten to drop port constraints."""
        return self._port_insensitive

    def add(self, rule: Rule, published: datetime) -> None:
        """Register a rule with its publication timestamp."""
        if rule.sid in self._sid_index:
            raise ValueError(f"duplicate sid {rule.sid}")
        if self._port_insensitive:
            rule = rule.port_insensitive()
        self._sid_index[rule.sid] = len(self._rules)
        self._rules.append((rule, published))
        fast = rule.fast_pattern
        self._fast_patterns.append(fast.pattern.lower() if fast else None)
        self._compiled = False  # prefilter rebuilt lazily on next match

    def extend(self, rules: Iterable[Tuple[Rule, datetime]]) -> None:
        for rule, published in rules:
            self.add(rule, published)

    def update(self, rule: Rule, published: datetime) -> bool:
        """Install a rule revision.

        Vendors ship revised signatures under the same SID with a bumped
        ``rev`` (e.g. tightening a pattern after false positives).  The
        revision replaces the detection logic but keeps the *original*
        publication date — the defense existed from first release, which is
        what the D (fix deployed) lifecycle event measures.

        Returns True when an existing SID was revised; adds the rule as new
        (with ``published``) otherwise.  A stale revision (rev not higher
        than the installed one) is rejected.
        """
        index = self._sid_index.get(rule.sid)
        if index is None:
            self.add(rule, published)
            return False
        existing, original_published = self._rules[index]
        if rule.rev <= existing.rev:
            raise ValueError(
                f"sid {rule.sid}: revision {rule.rev} is not newer "
                f"than installed rev {existing.rev}"
            )
        if self._port_insensitive:
            rule = rule.port_insensitive()
        self._rules[index] = (rule, original_published)
        fast = rule.fast_pattern
        self._fast_patterns[index] = fast.pattern.lower() if fast else None
        self._compiled = False
        return True

    def published_at(self, sid: int) -> datetime:
        """Publication timestamp for a SID (O(1); called per alert)."""
        try:
            return self._rules[self._sid_index[sid]][1]
        except KeyError:
            raise KeyError(sid) from None

    def rule_for_sid(self, sid: int) -> Rule:
        """The installed rule for a SID (O(1); called per alert)."""
        try:
            return self._rules[self._sid_index[sid]][0]
        except KeyError:
            raise KeyError(sid) from None

    # -- prefilter ----------------------------------------------------------

    def _compile(self) -> None:
        """(Re)build the fast-pattern prefilter and the ordered match plans."""
        pattern_to_id: Dict[bytes, int] = {}
        patterns: List[bytes] = []
        self._pattern_rules = []
        self._unfiltered = []
        for index, pattern in enumerate(self._fast_patterns):
            if pattern is None:
                self._unfiltered.append(index)
                continue
            pattern_id = pattern_to_id.get(pattern)
            if pattern_id is None:
                pattern_id = len(patterns)
                pattern_to_id[pattern] = pattern_id
                patterns.append(pattern)
                self._pattern_rules.append([])
            self._pattern_rules[pattern_id].append(index)
        self._automaton = None
        self._prefilter = None
        self._sharded = None
        if patterns:
            if self._use_sharding(len(patterns)):
                shard_count = (
                    self._shards if self._shards and self._shards > 1 else None
                )
                self._sharded = ShardedPrefilter(
                    patterns,
                    shard_count=shard_count,
                    shard_size=DEFAULT_SHARD_SIZE,
                    engine=self._engine,
                )
            elif self._engine == "aho":
                self._automaton = AhoCorasick(patterns)
            else:
                self._prefilter = RegexPrefilter(patterns)

        # Publication order: rank every rule by (published, insertion index)
        # once, then keep each pattern group's rule list sorted by that rank.
        # match_session can then stop at the *first* full match — it is the
        # earliest-published one by construction.
        total = len(self._rules)
        order = sorted(range(total), key=lambda i: (self._rules[i][1], i))
        rank: "array[int]" = array("l", [0] * total)
        for position, index in enumerate(order):
            rank[index] = position
        self._rank = rank
        by_rank = rank.__getitem__
        self._groups = [
            array("l", sorted(ids, key=by_rank)) for ids in self._pattern_rules
        ]
        self._unfiltered_ordered = array("l", sorted(self._unfiltered, key=by_rank))
        self._plans = [_compile_plan(rule) for rule, _ in self._rules]
        self._alert_meta = [
            (rule.sid, rule.cve_ids[0] if rule.cve_ids else None, published)
            for rule, published in self._rules
        ]
        self._compiled = True

    def _ensure_compiled(self) -> None:
        if not self._compiled:
            self._compile()

    def _use_sharding(self, pattern_count: int) -> bool:
        """Whether this ruleset's fast patterns get a sharded engine."""
        if self._shards is not None:
            return self._shards > 1
        return pattern_count >= AUTO_SHARD_MIN_PATTERNS

    @property
    def prefilter_shards(self) -> int:
        """Shard count of the compiled prefilter (0 when monolithic)."""
        self._ensure_compiled()
        return self._sharded.shard_count if self._sharded is not None else 0

    def prefilter_stats(self) -> Dict[str, float]:
        """Cumulative shard counters for :class:`~repro.nids.engine.ScanTelemetry`.

        The scan loop snapshots this before and after a stream and records
        the *delta*, so counters sum correctly when parallel workers merge
        their telemetry.  All zeros for a monolithic prefilter.
        """
        sharded = self._sharded if self._compiled else None
        if sharded is None:
            return {
                "prefilter_shards": 0,
                "shards_compiled": 0,
                "shard_compile_seconds": 0.0,
                "shard_searches": 0,
            }
        return {
            "prefilter_shards": sharded.shard_count,
            "shards_compiled": sharded.shards_compiled,
            "shard_compile_seconds": sharded.compile_seconds,
            "shard_searches": sharded.searches,
        }

    def _search_engine(self):
        """The active multi-pattern matcher (engine objects are API-equal)."""
        if self._sharded is not None:
            return self._sharded
        return self._prefilter if self._prefilter is not None else self._automaton

    # -- pickling -----------------------------------------------------------
    #
    # The arena plane ships one pickled ruleset blob to every worker.  All
    # compiled state (prefilter engines, plans, rank tables) is derived from
    # the rule list, so the blob carries only the source tables and each
    # worker recompiles once per ruleset digest (cached in
    # ``parallel._worker_rulesets``); shards then compile lazily on the first
    # chunk that searches them.  This keeps the shared-memory blob compact
    # at 10k-rule scale instead of serialising thousands of compiled
    # regexes.

    _DERIVED_SLOTS = (
        "_automaton",
        "_prefilter",
        "_sharded",
        "_pattern_rules",
        "_unfiltered",
        "_groups",
        "_unfiltered_ordered",
        "_rank",
        "_plans",
        "_alert_meta",
    )

    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        for slot in self._DERIVED_SLOTS:
            state.pop(slot, None)
        state["_compiled"] = False
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._automaton = None
        self._prefilter = None
        self._sharded = None
        self._pattern_rules = []
        self._unfiltered = []
        self._groups = []
        self._unfiltered_ordered = array("l")
        self._rank = array("l")
        self._plans = []
        self._alert_meta = []
        self._compiled = False

    def _candidates(self, payload: bytes) -> List[int]:
        """Rule indices whose fast pattern occurs (plus unfiltered rules)."""
        candidates = list(self._unfiltered)
        engine = self._search_engine()
        if engine is not None:
            # Lower once here; both engines accept the pre-lowered haystack.
            for pattern_id in engine.search(payload.lower(), lowered=True):
                candidates.extend(self._pattern_rules[pattern_id])
        return candidates

    # -- matching -------------------------------------------------------------

    def _match_payload(
        self,
        payload: bytes,
        src_port: Optional[int] = None,
        dst_port: Optional[int] = None,
    ) -> Tuple[Optional[int], bool, int, int, float, float]:
        """Earliest-published matching rule index for one payload.

        The ordered lazy fast path: the prefilter nominates pattern groups,
        candidates stream out of a heap-merge in ascending publication rank,
        and evaluation stops at the first full match.  Returns ``(winner,
        prefilter_hit, nominated, evaluated, prefilter_seconds,
        eval_seconds)`` — winner is None when nothing matched; the counters
        and stage timings feed :class:`repro.nids.engine.ScanTelemetry`.
        """
        t_scan = perf_counter()
        engine = self._search_engine()
        hits = engine.search(payload.lower(), lowered=True) if engine else ()
        t_nominate = perf_counter()

        unfiltered = self._unfiltered_ordered
        nominated = len(unfiltered)
        if hits:
            groups = self._groups
            lists = [groups[pattern_id] for pattern_id in hits]
            for group in lists:
                nominated += len(group)
            if unfiltered:
                lists.append(unfiltered)
            if len(lists) == 1:
                candidates = lists[0]
            else:
                candidates = heapq.merge(*lists, key=self._rank.__getitem__)
        elif unfiltered:
            candidates = unfiltered
        else:
            return None, False, 0, 0, t_nominate - t_scan, 0.0

        winner: Optional[int] = None
        evaluated = 0
        buffers = SessionBuffers(payload)
        plans = self._plans
        if self._port_insensitive:
            for index in candidates:
                evaluated += 1
                if _eval_plan(plans[index], buffers):
                    winner = index
                    break
        else:
            rules = self._rules
            for index in candidates:
                rule = rules[index][0]
                if not rule.dst_ports.matches(dst_port):
                    continue
                if not rule.src_ports.matches(src_port):
                    continue
                evaluated += 1
                if _eval_plan(plans[index], buffers):
                    winner = index
                    break
        return (
            winner,
            bool(hits),
            nominated,
            evaluated,
            t_nominate - t_scan,
            perf_counter() - t_nominate,
        )

    def match_payloads(
        self, payloads: Iterable[bytes]
    ) -> Tuple[Dict[bytes, Optional[int]], int, int, int, float, float]:
        """Bulk form of :meth:`_match_payload` over distinct payloads.

        Only valid for port-insensitive rulesets (the match decision is then
        a pure function of the payload bytes).  Returns ``(winners,
        prefilter_hits, nominated, evaluated, prefilter_seconds,
        eval_seconds)`` where ``winners`` maps each payload to its
        earliest-published matching rule index or None.  The per-payload
        loop hoists every table lookup out of the hot path — this is the
        scan's inner loop on deduplicated archives.
        """
        if not self._port_insensitive:
            raise ValueError("match_payloads requires a port-insensitive ruleset")
        self._ensure_compiled()
        engine = self._search_engine()
        search = engine.search if engine is not None else None
        groups = self._groups
        unfiltered = self._unfiltered_ordered
        n_unfiltered = len(unfiltered)
        rank_key = self._rank.__getitem__
        plans = self._plans
        merge = heapq.merge
        winners: Dict[bytes, Optional[int]] = {}
        prefilter_hits = nominated = evaluated = 0
        prefilter_seconds = eval_seconds = 0.0
        for payload in payloads:
            t_scan = perf_counter()
            hits = search(payload.lower(), lowered=True) if search is not None else ()
            t_nominate = perf_counter()
            prefilter_seconds += t_nominate - t_scan
            winner: Optional[int] = None
            if hits:
                prefilter_hits += 1
                nominated += n_unfiltered
                if len(hits) == 1:
                    (pattern_id,) = hits
                    group = groups[pattern_id]
                    nominated += len(group)
                    if n_unfiltered:
                        candidates = merge(group, unfiltered, key=rank_key)
                    else:
                        candidates = group
                else:
                    lists = [groups[pattern_id] for pattern_id in hits]
                    for group in lists:
                        nominated += len(group)
                    if n_unfiltered:
                        lists.append(unfiltered)
                    candidates = merge(*lists, key=rank_key)
            elif n_unfiltered:
                nominated += n_unfiltered
                candidates = unfiltered
            else:
                winners[payload] = None
                continue
            buffers = SessionBuffers(payload)
            for index in candidates:
                evaluated += 1
                if _eval_plan(plans[index], buffers):
                    winner = index
                    break
            eval_seconds += perf_counter() - t_nominate
            winners[payload] = winner
        return (
            winners,
            prefilter_hits,
            nominated,
            evaluated,
            prefilter_seconds,
            eval_seconds,
        )

    def _alert_for(self, index: int, session: TcpSession) -> Alert:
        """Build the alert for a winning rule index.

        Bypasses the frozen-dataclass constructor (``__init__`` +
        ``__setattr__`` override cost ~3x a plain dict update); equality and
        hashing are unaffected because both read the instance dict.
        """
        sid, cve_id, published = self._alert_meta[index]
        alert = object.__new__(Alert)
        alert.__dict__.update(
            session_id=session.session_id,
            timestamp=session.start,
            sid=sid,
            cve_id=cve_id,
            rule_published=published,
            dst_ip=session.dst_ip,
            dst_port=session.dst_port,
            src_ip=session.src_ip,
        )
        return alert

    def match_session(self, session: TcpSession) -> Optional[Alert]:
        """Evaluate all rules; retain the earliest-published match.

        Returns None when no rule matches.
        """
        if not session.payload:
            return None
        self._ensure_compiled()
        if self._engine == "aho":
            return self._match_session_reference(session)
        winner = self._match_payload(
            session.payload,
            src_port=session.src_port,
            dst_port=session.dst_port,
        )[0]
        if winner is None:
            return None
        return self._alert_for(winner, session)

    def _match_session_reference(self, session: TcpSession) -> Optional[Alert]:
        """The original evaluate-every-candidate retention loop, kept as the
        differential baseline for the ordered fast path."""
        buffers = SessionBuffers(session.payload)
        best: Optional[Tuple[datetime, Rule]] = None
        for index in self._candidates(session.payload):
            rule, published = self._rules[index]
            if best is not None and published >= best[0]:
                continue
            if match_rule(rule, session, buffers, check_ports=not self._port_insensitive):
                best = (published, rule)
        if best is None:
            return None
        published, rule = best
        return self._alert(rule, published, session)

    def match_all(self, session: TcpSession) -> List[Alert]:
        """All matching rules for a session (diagnostics / case studies)."""
        alerts: List[Alert] = []
        if not session.payload:
            return alerts
        self._ensure_compiled()
        buffers = SessionBuffers(session.payload)
        for index in sorted(self._candidates(session.payload)):
            rule, published = self._rules[index]
            if match_rule(rule, session, buffers, check_ports=not self._port_insensitive):
                alerts.append(self._alert(rule, published, session))
        return alerts

    def _alert(self, rule: Rule, published: datetime, session: TcpSession) -> Alert:
        cve_ids = rule.cve_ids
        return Alert(
            session_id=session.session_id,
            timestamp=session.start,
            sid=rule.sid,
            cve_id=cve_ids[0] if cve_ids else None,
            rule_published=published,
            dst_ip=session.dst_ip,
            dst_port=session.dst_port,
            src_ip=session.src_ip,
        )
