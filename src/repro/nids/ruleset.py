"""Ruleset management: publication dates, port-insensitive rewriting, and
earliest-published-signature retention.

The study evaluates the full ruleset over each session and keeps only the
earliest-*published* matching signature (Section 3.1) — this attributes a
session to the first defense that could ever have caught it, which is what
the D (fix deployed) comparison needs.

Matching is prefiltered the way real Snort does it: an Aho-Corasick
automaton over every rule's *fast pattern* scans each payload once and
nominates candidate rules; only candidates get full option evaluation.
Rules without a usable fast pattern (pure-pcre rules) are always candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.session import TcpSession
from repro.nids.automaton import AhoCorasick
from repro.nids.matcher import SessionBuffers, match_rule
from repro.nids.rule import Rule


@dataclass(frozen=True)
class Alert:
    """One retained detection: a session matched a signature."""

    session_id: int
    timestamp: datetime
    sid: int
    cve_id: Optional[str]
    rule_published: datetime
    dst_ip: int
    dst_port: int
    src_ip: int

    @property
    def pre_publication(self) -> bool:
        """Whether the traffic predates the signature's publication —
        only discoverable because evaluation is post-facto."""
        return self.timestamp < self.rule_published


class Ruleset:
    """A set of rules with publication dates.

    ``port_insensitive`` (default True, per the paper) rewrites every rule
    to drop port constraints before matching.
    """

    def __init__(self, *, port_insensitive: bool = True) -> None:
        self._rules: List[Tuple[Rule, datetime]] = []
        self._sid_index: Dict[int, int] = {}
        self._port_insensitive = port_insensitive
        self._fast_patterns: List[Optional[bytes]] = []
        self._automaton: Optional[AhoCorasick] = None
        self._pattern_rules: List[List[int]] = []
        self._unfiltered: List[int] = []
        self._compiled = False

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> List[Rule]:
        return [rule for rule, _ in self._rules]

    def add(self, rule: Rule, published: datetime) -> None:
        """Register a rule with its publication timestamp."""
        if rule.sid in self._sid_index:
            raise ValueError(f"duplicate sid {rule.sid}")
        if self._port_insensitive:
            rule = rule.port_insensitive()
        self._sid_index[rule.sid] = len(self._rules)
        self._rules.append((rule, published))
        fast = rule.fast_pattern
        self._fast_patterns.append(fast.pattern.lower() if fast else None)
        self._compiled = False  # prefilter rebuilt lazily on next match

    def extend(self, rules: Iterable[Tuple[Rule, datetime]]) -> None:
        for rule, published in rules:
            self.add(rule, published)

    def update(self, rule: Rule, published: datetime) -> bool:
        """Install a rule revision.

        Vendors ship revised signatures under the same SID with a bumped
        ``rev`` (e.g. tightening a pattern after false positives).  The
        revision replaces the detection logic but keeps the *original*
        publication date — the defense existed from first release, which is
        what the D (fix deployed) lifecycle event measures.

        Returns True when an existing SID was revised; adds the rule as new
        (with ``published``) otherwise.  A stale revision (rev not higher
        than the installed one) is rejected.
        """
        index = self._sid_index.get(rule.sid)
        if index is None:
            self.add(rule, published)
            return False
        existing, original_published = self._rules[index]
        if rule.rev <= existing.rev:
            raise ValueError(
                f"sid {rule.sid}: revision {rule.rev} is not newer "
                f"than installed rev {existing.rev}"
            )
        if self._port_insensitive:
            rule = rule.port_insensitive()
        self._rules[index] = (rule, original_published)
        fast = rule.fast_pattern
        self._fast_patterns[index] = fast.pattern.lower() if fast else None
        self._compiled = False
        return True

    def published_at(self, sid: int) -> datetime:
        """Publication timestamp for a SID (O(1); called per alert)."""
        try:
            return self._rules[self._sid_index[sid]][1]
        except KeyError:
            raise KeyError(sid) from None

    def rule_for_sid(self, sid: int) -> Rule:
        """The installed rule for a SID (O(1); called per alert)."""
        try:
            return self._rules[self._sid_index[sid]][0]
        except KeyError:
            raise KeyError(sid) from None

    # -- prefilter ----------------------------------------------------------

    def _compile(self) -> None:
        """(Re)build the Aho-Corasick prefilter over fast patterns."""
        pattern_to_id: Dict[bytes, int] = {}
        patterns: List[bytes] = []
        self._pattern_rules = []
        self._unfiltered = []
        for index, pattern in enumerate(self._fast_patterns):
            if pattern is None:
                self._unfiltered.append(index)
                continue
            pattern_id = pattern_to_id.get(pattern)
            if pattern_id is None:
                pattern_id = len(patterns)
                pattern_to_id[pattern] = pattern_id
                patterns.append(pattern)
                self._pattern_rules.append([])
            self._pattern_rules[pattern_id].append(index)
        self._automaton = AhoCorasick(patterns) if patterns else None
        self._compiled = True

    def _ensure_compiled(self) -> None:
        if not self._compiled:
            self._compile()

    def _candidates(self, payload: bytes) -> List[int]:
        """Rule indices whose fast pattern occurs (plus unfiltered rules)."""
        candidates = list(self._unfiltered)
        if self._automaton is not None:
            for pattern_id in self._automaton.search(payload):
                candidates.extend(self._pattern_rules[pattern_id])
        return candidates

    # -- matching -------------------------------------------------------------

    def match_session(self, session: TcpSession) -> Optional[Alert]:
        """Evaluate all rules; retain the earliest-published match.

        Returns None when no rule matches.
        """
        if not session.payload:
            return None
        self._ensure_compiled()
        buffers = SessionBuffers(session.payload)
        best: Optional[Tuple[datetime, Rule]] = None
        for index in self._candidates(session.payload):
            rule, published = self._rules[index]
            if best is not None and published >= best[0]:
                continue
            if match_rule(rule, session, buffers, check_ports=not self._port_insensitive):
                best = (published, rule)
        if best is None:
            return None
        published, rule = best
        return self._alert(rule, published, session)

    def match_all(self, session: TcpSession) -> List[Alert]:
        """All matching rules for a session (diagnostics / case studies)."""
        alerts: List[Alert] = []
        if not session.payload:
            return alerts
        self._ensure_compiled()
        buffers = SessionBuffers(session.payload)
        for index in sorted(self._candidates(session.payload)):
            rule, published = self._rules[index]
            if match_rule(rule, session, buffers, check_ports=not self._port_insensitive):
                alerts.append(self._alert(rule, published, session))
        return alerts

    def _alert(self, rule: Rule, published: datetime, session: TcpSession) -> Alert:
        cve_ids = rule.cve_ids
        return Alert(
            session_id=session.session_id,
            timestamp=session.start,
            sid=rule.sid,
            cve_id=cve_ids[0] if cve_ids else None,
            rule_published=published,
            dst_ip=session.dst_ip,
            dst_port=session.dst_port,
            src_ip=session.src_ip,
        )
