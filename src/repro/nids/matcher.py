"""Rule evaluation against captured sessions.

Implements Snort's detection semantics for the supported option subset:
options are evaluated in source order; every positive option must match (and
every negated option must not); ``distance``/``within`` anchor a content
match to the end of the previous match *in the same buffer*; HTTP buffer
options require the payload to parse as an HTTP request.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Dict, Optional

from repro.net.http import HttpRequest, parse_http_request
from repro.net.session import TcpSession
from repro.nids.rule import (
    ContentMatch,
    HttpBuffer,
    IsDataAt,
    PcreMatch,
    Rule,
    SizeBound,
)


class SessionBuffers:
    """Lazily extracted match buffers for one session payload.

    Parsing HTTP once per session (not once per rule) is the difference
    between the engine being usable on 100k-session archives or not.
    """

    def __init__(self, payload: bytes) -> None:
        self.raw = payload
        self._http: Optional[HttpRequest] = None
        self._http_parsed = False
        self._cache: Dict[HttpBuffer, Optional[bytes]] = {}
        self._lower: Dict[HttpBuffer, bytes] = {}

    @property
    def http(self) -> Optional[HttpRequest]:
        if not self._http_parsed:
            self._http = parse_http_request(self.raw)
            self._http_parsed = True
        return self._http

    def get(self, buffer: HttpBuffer) -> Optional[bytes]:
        """The bytes for a buffer, or None when unavailable (non-HTTP)."""
        if buffer is HttpBuffer.RAW:
            return self.raw
        if buffer in self._cache:
            return self._cache[buffer]
        request = self.http
        value: Optional[bytes]
        if request is None:
            value = None
        elif buffer is HttpBuffer.HTTP_URI:
            value = request.uri.encode("utf-8", errors="surrogateescape")
        elif buffer is HttpBuffer.HTTP_HEADER:
            value = request.raw_headers.encode("utf-8", errors="surrogateescape")
        elif buffer is HttpBuffer.HTTP_COOKIE:
            value = request.cookie.encode("utf-8", errors="surrogateescape")
        elif buffer is HttpBuffer.HTTP_CLIENT_BODY:
            value = request.body
        elif buffer is HttpBuffer.HTTP_METHOD:
            value = request.method.encode("utf-8", errors="surrogateescape")
        else:  # pragma: no cover - exhaustive over enum
            raise AssertionError(buffer)
        self._cache[buffer] = value
        return value

    def lowered(self, buffer: HttpBuffer) -> Optional[bytes]:
        """Lowercased buffer bytes, computed at most once per session.

        Every ``nocase`` option of every candidate rule needs the lowered
        haystack; on archives with hundreds of candidate rules per session,
        re-lowering the payload per option dominated the match loop.
        """
        cached = self._lower.get(buffer)
        if cached is not None:
            return cached
        value = self.get(buffer)
        if value is None:
            return None
        lowered = value.lower()
        self._lower[buffer] = lowered
        return lowered


@lru_cache(maxsize=4096)
def _compiled(pattern: str, flags: int) -> "re.Pattern[bytes]":
    return re.compile(pattern.encode("utf-8"), flags)


def _find_content(
    haystack: bytes,
    option: ContentMatch,
    anchor: int,
    haystack_lower: Optional[bytes] = None,
) -> Optional[int]:
    """Return the end offset of the match, or None.

    ``anchor`` is the end of the previous match in this buffer (0 at start);
    relative modifiers offset from it, absolute ones from the buffer start.
    ``haystack_lower`` is an optional pre-lowered haystack for ``nocase``
    options (see :meth:`SessionBuffers.lowered`).
    """
    needle = option.pattern
    if option.nocase:
        haystack = haystack_lower if haystack_lower is not None else haystack.lower()
        needle = needle.lower()

    if option.is_relative:
        start = anchor + (option.distance or 0)
        if option.within is not None:
            end = start + option.within
        else:
            end = len(haystack)
    else:
        start = option.offset or 0
        if option.depth is not None:
            end = start + option.depth
        else:
            end = len(haystack)

    if start < 0 or start > len(haystack):
        return None
    found = haystack.find(needle, start, min(end, len(haystack)))
    if found < 0:
        return None
    return found + len(needle)


def match_rule(
    rule: Rule,
    session: TcpSession,
    buffers: Optional[SessionBuffers] = None,
    *,
    check_ports: bool = True,
) -> bool:
    """Whether a rule matches a session.

    ``check_ports`` False skips the destination-port constraint — the
    study's port-insensitive evaluation (equivalently, call
    :meth:`Rule.port_insensitive` once up front).
    """
    if check_ports and not rule.dst_ports.matches(session.dst_port):
        return False
    if check_ports and not rule.src_ports.matches(session.src_port):
        return False
    if not session.payload:
        return False

    if buffers is None:
        buffers = SessionBuffers(session.payload)

    anchors: Dict[HttpBuffer, int] = {}
    last_buffer = HttpBuffer.RAW
    for option in rule.options:
        if isinstance(option, SizeBound):
            if option.kind == "dsize":
                size = len(buffers.raw)
            else:  # urilen
                uri = buffers.get(HttpBuffer.HTTP_URI)
                if uri is None:
                    return False
                size = len(uri)
            if not option.matches(size):
                return False
            continue
        if isinstance(option, IsDataAt):
            haystack = buffers.get(last_buffer)
            if haystack is None:
                return False
            position = option.offset
            if option.relative:
                position += anchors.get(last_buffer, 0)
            has_data = position < len(haystack)
            if has_data == option.negated:
                return False
            continue
        haystack = buffers.get(option.buffer)
        if haystack is None:
            # HTTP buffer requested but the payload is not HTTP: a positive
            # option cannot match; a negated option trivially holds.
            if isinstance(option, (ContentMatch, PcreMatch)) and option.negated:
                continue
            return False
        if isinstance(option, ContentMatch):
            end = _find_content(
                haystack,
                option,
                anchors.get(option.buffer, 0),
                buffers.lowered(option.buffer) if option.nocase else None,
            )
            if option.negated:
                if end is not None:
                    return False
                continue
            if end is None:
                return False
            anchors[option.buffer] = end
        elif isinstance(option, PcreMatch):
            found = _compiled(option.pattern, option.flags).search(haystack)
            if option.negated:
                if found is not None:
                    return False
                continue
            if found is None:
                return False
            anchors[option.buffer] = found.end()
        else:  # pragma: no cover - AST is closed
            raise AssertionError(f"unknown option type {option!r}")
        last_buffer = option.buffer
    return True
