"""Rule evaluation against captured sessions.

Implements Snort's detection semantics for the supported option subset:
options are evaluated in source order; every positive option must match (and
every negated option must not); ``distance``/``within`` anchor a content
match to the end of the previous match *in the same buffer*; HTTP buffer
options require the payload to parse as an HTTP request.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.net.http import HttpRequest, parse_http_headers, split_http_head
from repro.net.session import TcpSession
from repro.nids.rule import (
    ContentMatch,
    HttpBuffer,
    IsDataAt,
    PcreMatch,
    Rule,
    SizeBound,
)


#: Stable small-int index per buffer kind; the plan-compiled match path in
#: ``Ruleset`` addresses buffers by these ints to skip enum dispatch.
_BUFFER_INDEX: Dict[HttpBuffer, int] = {
    buffer: index for index, buffer in enumerate(HttpBuffer)
}
_BUFFER_COUNT = len(_BUFFER_INDEX)
RAW_INDEX = _BUFFER_INDEX[HttpBuffer.RAW]
URI_INDEX = _BUFFER_INDEX[HttpBuffer.HTTP_URI]
_HEADER_INDEX = _BUFFER_INDEX[HttpBuffer.HTTP_HEADER]
_COOKIE_INDEX = _BUFFER_INDEX[HttpBuffer.HTTP_COOKIE]
_BODY_INDEX = _BUFFER_INDEX[HttpBuffer.HTTP_CLIENT_BODY]
_METHOD_INDEX = _BUFFER_INDEX[HttpBuffer.HTTP_METHOD]

#: Cache sentinel distinct from ``None`` — "not yet computed" vs "computed,
#: and the buffer is unavailable".  Caching the ``None`` outcome matters:
#: a non-HTTP payload probed by many HTTP-buffer options must parse once,
#: not once per option.
_MISSING = object()


class SessionBuffers:
    """Lazily extracted match buffers for one session payload.

    Parsing HTTP once per session (not once per rule) is the difference
    between the engine being usable on 100k-session archives or not.
    Buffer values and their lowercased forms are memoised in small lists
    indexed by :data:`_BUFFER_INDEX`, with :data:`_MISSING` marking "not
    yet computed" so the absent (``None``) outcome is cached too.

    Parsing is staged: the request line and body (``http_uri``,
    ``http_method``, ``http_client_body``) come from
    :func:`repro.net.http.split_http_head` alone; the header lines are only
    parsed into an :class:`HttpRequest` when a header-derived buffer
    (``http_header``, ``http_cookie``) is requested — most rules never get
    that far.
    """

    __slots__ = ("raw", "_head", "_head_parsed", "_http", "_http_parsed", "_vals", "_lows")

    def __init__(self, payload: bytes) -> None:
        self.raw = payload
        self._head: Optional[Tuple[str, str, str, List[str], bytes]] = None
        self._head_parsed = False
        self._http: Optional[HttpRequest] = None
        self._http_parsed = False
        self._vals = [_MISSING] * _BUFFER_COUNT
        self._vals[RAW_INDEX] = payload
        self._lows = [_MISSING] * _BUFFER_COUNT

    @property
    def head(self) -> Optional[Tuple[str, str, str, List[str], bytes]]:
        """The split request head, or None for non-HTTP payloads."""
        if not self._head_parsed:
            self._head = split_http_head(self.raw)
            self._head_parsed = True
        return self._head

    @property
    def http(self) -> Optional[HttpRequest]:
        if not self._http_parsed:
            head = self.head
            if head is None:
                self._http = None
            else:
                method, uri, version, header_lines, body = head
                self._http = HttpRequest(
                    method=method,
                    uri=uri,
                    version=version,
                    headers=parse_http_headers(header_lines),
                    body=body,
                )
            self._http_parsed = True
        return self._http

    def get_index(self, index: int) -> Optional[bytes]:
        """The bytes for the buffer at ``index``, or None when unavailable."""
        value = self._vals[index]
        if value is not _MISSING:
            return value
        if index == _HEADER_INDEX or index == _COOKIE_INDEX:
            request = self.http
            if request is None:
                value = None
            elif index == _HEADER_INDEX:
                value = request.raw_headers.encode("utf-8", errors="surrogateescape")
            else:
                value = request.cookie.encode("utf-8", errors="surrogateescape")
        else:
            head = self.head
            if head is None:
                value = None
            elif index == URI_INDEX:
                value = head[1].encode("utf-8", errors="surrogateescape")
            elif index == _BODY_INDEX:
                value = head[4]
            elif index == _METHOD_INDEX:
                value = head[0].encode("utf-8", errors="surrogateescape")
            else:  # pragma: no cover - exhaustive over enum
                raise AssertionError(index)
        self._vals[index] = value
        return value

    def get(self, buffer: HttpBuffer) -> Optional[bytes]:
        """The bytes for a buffer, or None when unavailable (non-HTTP)."""
        return self.get_index(_BUFFER_INDEX[buffer])

    def lowered_index(self, index: int) -> Optional[bytes]:
        """Lowercased buffer bytes at ``index``, computed at most once."""
        low = self._lows[index]
        if low is not _MISSING:
            return low
        value = self.get_index(index)
        low = None if value is None else value.lower()
        self._lows[index] = low
        return low

    def lowered(self, buffer: HttpBuffer) -> Optional[bytes]:
        """Lowercased buffer bytes, computed at most once per session.

        Every ``nocase`` option of every candidate rule needs the lowered
        haystack; on archives with hundreds of candidate rules per session,
        re-lowering the payload per option dominated the match loop.  The
        absent (``None``) outcome is cached as well, so repeated ``nocase``
        probes against a missing HTTP buffer don't re-enter :meth:`get`.
        """
        return self.lowered_index(_BUFFER_INDEX[buffer])


#: Sized to hold every distinct pcre in a full study ruleset with ample
#: slack, so a long scan never cycles compile/evict.  Eviction churn is
#: observable through ``ScanTelemetry.pcre_cache``.
PCRE_CACHE_SIZE = 65536


@lru_cache(maxsize=PCRE_CACHE_SIZE)
def _compiled(pattern: str, flags: int) -> "re.Pattern[bytes]":
    return re.compile(pattern.encode("utf-8"), flags)


def _find_content(
    haystack: bytes,
    option: ContentMatch,
    anchor: int,
    haystack_lower: Optional[bytes] = None,
) -> Optional[int]:
    """Return the end offset of the match, or None.

    ``anchor`` is the end of the previous match in this buffer (0 at start);
    relative modifiers offset from it, absolute ones from the buffer start.
    ``haystack_lower`` is an optional pre-lowered haystack for ``nocase``
    options (see :meth:`SessionBuffers.lowered`).
    """
    needle = option.pattern
    if option.nocase:
        haystack = haystack_lower if haystack_lower is not None else haystack.lower()
        needle = needle.lower()

    if option.is_relative:
        start = anchor + (option.distance or 0)
        if option.within is not None:
            end = start + option.within
        else:
            end = len(haystack)
    else:
        start = option.offset or 0
        if option.depth is not None:
            end = start + option.depth
        else:
            end = len(haystack)

    if start < 0 or start > len(haystack):
        return None
    found = haystack.find(needle, start, min(end, len(haystack)))
    if found < 0:
        return None
    return found + len(needle)


def match_rule(
    rule: Rule,
    session: TcpSession,
    buffers: Optional[SessionBuffers] = None,
    *,
    check_ports: bool = True,
) -> bool:
    """Whether a rule matches a session.

    ``check_ports`` False skips the destination-port constraint — the
    study's port-insensitive evaluation (equivalently, call
    :meth:`Rule.port_insensitive` once up front).
    """
    if check_ports and not rule.dst_ports.matches(session.dst_port):
        return False
    if check_ports and not rule.src_ports.matches(session.src_port):
        return False
    if not session.payload:
        return False

    if buffers is None:
        buffers = SessionBuffers(session.payload)

    anchors: Dict[HttpBuffer, int] = {}
    last_buffer = HttpBuffer.RAW
    for option in rule.options:
        if isinstance(option, SizeBound):
            if option.kind == "dsize":
                size = len(buffers.raw)
            else:  # urilen
                uri = buffers.get(HttpBuffer.HTTP_URI)
                if uri is None:
                    return False
                size = len(uri)
            if not option.matches(size):
                return False
            continue
        if isinstance(option, IsDataAt):
            haystack = buffers.get(last_buffer)
            if haystack is None:
                return False
            position = option.offset
            if option.relative:
                position += anchors.get(last_buffer, 0)
            has_data = position < len(haystack)
            if has_data == option.negated:
                return False
            continue
        haystack = buffers.get(option.buffer)
        if haystack is None:
            # HTTP buffer requested but the payload is not HTTP: a positive
            # option cannot match; a negated option trivially holds.
            if isinstance(option, (ContentMatch, PcreMatch)) and option.negated:
                continue
            return False
        if isinstance(option, ContentMatch):
            end = _find_content(
                haystack,
                option,
                anchors.get(option.buffer, 0),
                buffers.lowered(option.buffer) if option.nocase else None,
            )
            if option.negated:
                if end is not None:
                    return False
                continue
            if end is None:
                return False
            anchors[option.buffer] = end
        elif isinstance(option, PcreMatch):
            found = _compiled(option.pattern, option.flags).search(haystack)
            if option.negated:
                if found is not None:
                    return False
                continue
            if found is None:
                return False
            anchors[option.buffer] = found.end()
        else:  # pragma: no cover - AST is closed
            raise AssertionError(f"unknown option type {option!r}")
        last_buffer = option.buffer
    return True
