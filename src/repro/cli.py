"""Command-line interface.

Subcommands::

    repro run         run the full study pipeline, print the headline
                      results, optionally export artifacts to a directory
    repro watch       tail the arrival stream window by window: incremental
                      study state, live A<P rate, rolling manifests
    repro serve       HTTP query plane over a columnar study shard
    repro query       answer one serve query offline from the shard
    repro experiment  regenerate one paper table/figure (see `repro list`)
    repro scenarios   list registered scenarios/components, show one, or
                      run the study under one (`scenarios run real-feeds`)
    repro feeds       real-feed snapshots: fetch (network, explicit only),
                      verify content hashes, show parsed record counts
    repro report      per-CVE lifecycle dossier from a study run
    repro trace       render a run manifest's span tree (where time went)
    repro metrics     render a run manifest's metrics snapshot
    repro list        list regenerable experiments
    repro rules       dump the study ruleset; `rules gen|lint|bench` work
                      with scaled synthetic rulesets (10k-rule scale)
    repro seeds       print the encoded Appendix E seed table
    repro baselines   paper baselines vs exactly computed Markov baselines
    repro cache       study-cache maintenance (stats / verify / gc / clear /
                      checkpoints)

Flags are uniform across subcommands: every study-running or
manifest-reading subcommand accepts ``--workers``, ``--cache`` /
``--no-cache``, ``--cache-dir``, and ``--json`` with identical meanings,
via one shared parent parser.  Every subcommand is deterministic for a
given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import timedelta
from pathlib import Path
from typing import List, Optional

from repro.analysis.pipeline import StudyConfig, StudyResult, run_study
from repro.experiments.registry import list_experiments, run_experiment
from repro.util.tables import render_table


def _positive_int(value: str) -> int:
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if count < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return count


def common_parent() -> argparse.ArgumentParser:
    """The flags every study-running / manifest-reading subcommand shares.

    One definition means one spelling, one help text, and one default for
    ``--workers``, ``--cache`` / ``--no-cache``, ``--cache-dir``, and
    ``--json`` across ``run``, ``experiment``, ``report``, ``trace``,
    ``metrics``, and the cache maintenance subcommands.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes for traffic generation and the NIDS scan "
             "(1 = serial; results are identical for any value)",
    )
    parent.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="reuse study intermediates from the on-disk cache "
             "(default on; see --cache-dir)",
    )
    parent.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="study cache root (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parent.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parent


def study_parent() -> argparse.ArgumentParser:
    """Flags that shape the study configuration itself."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scale", type=float, default=None,
        help="traffic volume scale (1.0 = the paper's full ~117k events; "
             "default 0.05, or the preset's scale with --preset)",
    )
    parent.add_argument("--seed", type=int, default=20230321)
    parent.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="registered scenario to compose the pipeline from "
             "(see `repro scenarios list`)",
    )
    parent.add_argument(
        "--feed-dir", default=None, metavar="DIR",
        help="directory holding real-feed snapshots (nvd.json, kev.json, "
             "fixes.csv) for feed-backed scenarios",
    )
    parent.add_argument(
        "--preset", choices=sorted(StudyConfig.PRESETS), default=None,
        help="named study configuration (quick / standard / full); "
             "presets are scenarios now — --scenario NAME is the same thing",
    )
    return parent


def _study_config(args: argparse.Namespace) -> StudyConfig:
    """The StudyConfig a subcommand's flags describe (run and watch agree)."""
    overrides = {"seed": args.seed, "workers": args.workers}
    if args.scale is not None:
        overrides["volume_scale"] = args.scale
    if getattr(args, "feed_dir", None) is not None:
        overrides["feed_dir"] = args.feed_dir
    scenario_name = getattr(args, "scenario", None)
    if scenario_name is not None and args.preset is not None:
        raise SystemExit("error: --scenario and --preset are mutually exclusive")
    # --preset is the legacy spelling: presets are registered scenarios.
    scenario_name = scenario_name or args.preset
    if scenario_name is not None:
        try:
            return StudyConfig.from_scenario(scenario_name, **overrides)
        except KeyError as error:
            raise SystemExit(f"error: {error.args[0]}") from None
    overrides.setdefault("volume_scale", 0.05)
    return StudyConfig(background_nvd_count=5000, **overrides)


def _study(args: argparse.Namespace) -> StudyResult:
    config = _study_config(args)
    cache = None
    if args.cache:
        from repro.cache import StudyCache

        cache = StudyCache(root=args.cache_dir)
    return run_study(config, cache=cache)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.exposure import mitigated_share
    from repro.core.skill import compute_skill, mean_skill
    from repro.reporting.tables import render_skill_table

    result = _study(args)
    reports = compute_skill(result.timelines.values())
    if args.json:
        manifest_path = result.telemetry.manifest_path
        print(json.dumps(
            {
                "from_cache": result.from_cache,
                "sessions": len(result.store),
                "alerts": len(result.alerts),
                "events": len(result.kept_events),
                "kept_cves": result.kept_cves,
                "dropped_cves": result.dropped_cves,
                "mean_skill": mean_skill(reports),
                "mitigated_share": mitigated_share(result.kept_events),
                "manifest": (
                    str(manifest_path) if manifest_path is not None else None
                ),
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    if result.from_cache:
        print("(traffic, capture, and scan served from the study cache)\n")
    print(render_skill_table(reports, title="Table 4 (measured)"))
    print(f"\nmean skill: {mean_skill(reports):.2f}")
    print(f"exploit events: {len(result.kept_events):,} across "
          f"{len(result.kept_cves)} CVEs "
          f"(dropped: {', '.join(result.dropped_cves) or 'none'})")
    print(f"per-event mitigated share: "
          f"{mitigated_share(result.kept_events):.2f}")

    if args.out is not None:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        _export_artifacts(result, out)
        print(f"\nartifacts written to {out}/")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.analysis.streaming import watch_study

    config = _study_config(args)
    manifest_dir = args.out
    if manifest_dir is None:
        from repro.cache import default_cache_root
        from repro.obs import manifests_root

        manifest_dir = manifests_root(args.cache_dir or default_cache_root())
    window_span = timedelta(days=args.window_days)
    if window_span <= timedelta(0):
        print("error: --window-days must be positive", file=sys.stderr)
        return 2
    report = None
    for report in watch_study(
        config,
        window_span=window_span,
        max_windows=args.max_windows,
        manifest_dir=manifest_dir,
    ):
        snapshot = report.snapshot
        rate = snapshot.a_before_p_rate
        if args.json:
            # One JSON object per window (JSONL), streamed as it happens.
            print(json.dumps({
                "window": report.index,
                "start": report.start.isoformat(),
                "end": report.end.isoformat(),
                "final": report.final,
                "window_sessions": report.sessions,
                "window_alerts": report.alerts,
                "sessions": snapshot.sessions_seen,
                "alerts": len(snapshot.alerts),
                "events": len(snapshot.events),
                "kept_cves": snapshot.kept_cves,
                "a_before_p_rate": rate,
                "cursor": report.cursor,
                "manifest": (
                    str(report.manifest_path)
                    if report.manifest_path is not None else None
                ),
            }, sort_keys=True), flush=True)
        else:
            rate_text = f"{rate:.2f}" if rate is not None else "n/a"
            print(
                f"window {report.index:>4} "
                f"[{report.start:%Y-%m-%d} .. {report.end:%Y-%m-%d})  "
                f"+{report.sessions:>6} sessions  +{report.alerts:>5} alerts"
                f"  |  cumulative: {snapshot.sessions_seen:,} sessions, "
                f"{len(snapshot.alerts):,} alerts, "
                f"{len(snapshot.events):,} events, "
                f"{len(snapshot.kept_cves)} CVEs  |  A<P {rate_text}",
                flush=True,
            )
    if report is None:
        print("no windows produced", file=sys.stderr)
        return 1
    if not args.json:
        print(f"\nrolling manifests under {manifest_dir}/")
    return 0


def _serve_study(args: argparse.Namespace):
    """(study, built) for serve/query: mmapped shard, built on first use."""
    from repro.store import load_shard, shard_for_config

    if args.shard is not None:
        return load_shard(args.shard), False
    config = _study_config(args)
    return shard_for_config(config, cache_root=args.cache_dir)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.store import StudyServer, StudyService

    study, built = _serve_study(args)
    service = StudyService(study)
    if built:
        print(f"shard built and published (etag {service.etag})",
              file=sys.stderr)
    server = StudyServer(service, host=args.host, port=args.port)

    async def _run() -> None:
        host, port = await server.start()
        print(f"serving study {service.etag} on http://{host}:{port}/ "
              f"(endpoints: /healthz /stats /v1/<query>)", file=sys.stderr)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.store import QueryError, StudyService

    study, _ = _serve_study(args)
    service = StudyService(study)
    params = {}
    if args.later is not None:
        params["later"] = args.later
    if args.earlier is not None:
        params["earlier"] = args.earlier
    if args.shifts is not None:
        params["shifts"] = args.shifts
    if args.within is not None:
        params["within"] = str(args.within)
    try:
        body = service.answer_bytes(args.query, params)
    except QueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sys.stdout.write(body.decode("utf-8"))
    return 0


def _export_artifacts(result: StudyResult, out: Path) -> None:
    from repro.reporting.export import export_csv, export_json
    from repro.reporting.figures import downsample_cdf, figure_series
    from repro.core.exposure import exposure_cdf

    mitigated, unmitigated = exposure_cdf(result.kept_events, result.timelines)
    export_csv(
        out / "exposure_cdfs.csv",
        [
            downsample_cdf(mitigated),
            downsample_cdf(unmitigated),
        ],
    )
    summaries = {}
    for experiment_id in list_experiments():
        report = run_experiment(experiment_id, result)
        summaries[experiment_id] = {
            "title": report.title,
            "paper": report.paper,
            "measured": report.measured,
        }
        (out / f"{experiment_id}.txt").write_text(report.text + "\n")
    export_json(out / "experiments.json", summaries)


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = _study(args)
    report = run_experiment(args.id, result)
    if args.json:
        print(json.dumps(
            {
                "experiment": report.experiment_id,
                "title": report.title,
                "paper": report.paper,
                "measured": report.measured,
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(f"{report.experiment_id}: {report.title}\n")
    if report.paper:
        rows = [
            [key, f"{value:.3f}", f"{report.measured.get(key, float('nan')):.3f}"]
            for key, value in report.paper.items()
        ]
        print(render_table(["quantity", "paper", "measured"], rows))
        print()
    print(report.text)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.cve_report import build_cve_report, render_cve_report

    result = _study(args)
    cve_id = args.cve.upper()
    if not cve_id.startswith("CVE-"):
        cve_id = f"CVE-{cve_id}"
    timeline = result.timelines.get(cve_id)
    if timeline is None:
        print(f"unknown CVE {cve_id}; studied CVEs:", file=sys.stderr)
        for known in sorted(result.timelines):
            print(f"  {known}", file=sys.stderr)
        return 1
    events = result.events_per_cve.get(cve_id, ())
    report = build_cve_report(timeline, events)
    if args.json:
        import dataclasses

        record = dataclasses.asdict(report)
        print(json.dumps(record, indent=2, sort_keys=True, default=str))
        return 0
    print(render_cve_report(report))
    return 0


def _resolve_manifest_path(args: argparse.Namespace) -> Optional[Path]:
    """The manifest a trace/metrics subcommand should read.

    An explicit positional path wins; otherwise the newest manifest under
    the cache root (``--cache-dir`` / ``$REPRO_CACHE_DIR`` / the default).
    """
    from repro.cache import default_cache_root
    from repro.obs import latest_manifest

    if args.manifest is not None:
        return Path(args.manifest)
    root = Path(args.cache_dir) if args.cache_dir else default_cache_root()
    return latest_manifest(root)


def _load_manifest(args: argparse.Namespace):
    from repro.obs import RunManifest

    path = _resolve_manifest_path(args)
    if path is None or not path.exists():
        print(
            "no run manifest found; run a study first (repro run) or pass "
            "a manifest path",
            file=sys.stderr,
        )
        return None, None
    return path, RunManifest.load(path)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_span_tree

    path, manifest = _load_manifest(args)
    if manifest is None:
        return 1
    if args.json:
        print(json.dumps(manifest.as_dict(), indent=2, sort_keys=True))
        return 0
    study = manifest.study
    execution = manifest.execution
    print(f"manifest: {path}")
    print(f"study key: {study.get('key')}")
    print(
        f"workers: {execution.get('workers')}  "
        f"from_cache: {execution.get('from_cache')}  "
        f"checkpoints: {execution.get('checkpoint_stages') or 'none'}"
    )
    print()
    print(render_span_tree(manifest.spans, show_attributes=not args.no_attrs))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    path, manifest = _load_manifest(args)
    if manifest is None:
        return 1
    metrics = manifest.metrics
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
        return 0
    print(f"manifest: {path}\n")
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    histograms = metrics.get("histograms") or {}
    if counters:
        rows = [[name, f"{int(value):,}"] for name, value in sorted(counters.items())]
        print(render_table(["counter", "value"], rows))
    if gauges:
        print()
        rows = [[name, f"{float(value):.6g}"] for name, value in sorted(gauges.items())]
        print(render_table(["gauge", "value"], rows))
    if histograms:
        print()
        rows = [
            [
                name,
                record.get("count"),
                f"{float(record.get('sum') or 0.0):.6g}",
                record.get("min"),
                record.get("max"),
            ]
            for name, record in sorted(histograms.items())
        ]
        print(render_table(["histogram", "count", "sum", "min", "max"], rows))
    if not (counters or gauges or histograms):
        print("(no metrics recorded)")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import COMPONENT_KINDS, get_scenario, scenario

    if args.json:
        record = {
            "scenarios": {
                name: get_scenario(name).to_dict()
                for name in scenario.names("scenario")
            },
            "components": {
                kind: {
                    entry.name: entry.description
                    for entry in scenario.entries(kind)
                }
                for kind in COMPONENT_KINDS
            },
        }
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    rows = [
        [entry.name, entry.description]
        for entry in scenario.entries("scenario")
    ]
    print(render_table(["scenario", "description"], rows,
                       title="Registered scenarios"))
    if args.components:
        for kind in COMPONENT_KINDS:
            rows = [
                [entry.name, entry.description]
                for entry in scenario.entries(kind)
            ]
            print()
            print(render_table([kind, "description"], rows))
    return 0


def _cmd_scenarios_show(args: argparse.Namespace) -> int:
    from repro.scenarios import get_scenario, resolve

    try:
        spec = get_scenario(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    config = _study_config(args)
    resolved = resolve(spec, config)
    if args.json:
        record = spec.to_dict()
        record["resolved"] = {
            "fingerprint": resolved.fingerprint,
            "components": {
                kind: {"ref": registration.name, "params": params}
                for kind, (registration, params) in sorted(
                    resolved.components.items()
                )
            },
        }
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    print(f"{spec.name}: {spec.description}")
    print(f"fingerprint (this config): {resolved.fingerprint}")
    if spec.config:
        print("config overrides:")
        for name, value in sorted(spec.config.items()):
            print(f"  {name} = {value}")
    print("components:")
    for kind, (registration, params) in sorted(resolved.components.items()):
        suffix = f"  {params}" if params else ""
        print(f"  {kind:<10} {registration.name}{suffix}")
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    args.scenario = args.name
    return _cmd_run(args)


def _feeds_dir(args: argparse.Namespace) -> Path:
    return Path(args.feed_dir if args.feed_dir is not None else "feeds")


def _cmd_feeds_fetch(args: argparse.Namespace) -> int:
    from repro.datasets.feeds.fetch import FEED_URLS, fetch_feed

    feed_dir = _feeds_dir(args)
    names = args.names or sorted(FEED_URLS)
    for name in names:
        try:
            digest = fetch_feed(name, feed_dir, url=args.url)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        except OSError as error:
            print(f"error fetching {name}: {error}", file=sys.stderr)
            return 1
        print(f"{name}: fetched into {feed_dir}/ (blake2b {digest})")
    return 0


def _cmd_feeds_verify(args: argparse.Namespace) -> int:
    from repro.datasets.feeds.fetch import verify_feeds

    feed_dir = _feeds_dir(args)
    statuses = verify_feeds(feed_dir)
    if not statuses:
        print(f"no hash manifest under {feed_dir}/ (fetch first)",
              file=sys.stderr)
        return 1
    failed = False
    for filename, status in statuses.items():
        print(f"{filename}: {status}")
        failed = failed or status != "ok"
    return 1 if failed else 0


def _cmd_feeds_show(args: argparse.Namespace) -> int:
    from repro.datasets.feeds import (
        FeedParseError,
        FixesFeedSource,
        KevFeedSource,
        Nvd2FeedSource,
    )

    feed_dir = _feeds_dir(args)
    sources = [
        ("nvd.json", Nvd2FeedSource),
        ("kev.json", KevFeedSource),
        ("fixes.csv", FixesFeedSource),
    ]
    record = {}
    for filename, source_cls in sources:
        path = feed_dir / filename
        if not path.is_file():
            record[filename] = {"status": "missing"}
            continue
        source = source_cls(str(path))
        try:
            records = source.fetch()
        except FeedParseError as error:
            record[filename] = {"status": "parse error", "error": str(error)}
            continue
        record[filename] = {
            "status": "ok",
            "records": len(records),
            "fingerprint": source.fingerprint(),
        }
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 1 if any(v["status"] != "ok" for v in record.values()) else 0
    rows = [
        [
            filename,
            info["status"],
            info.get("records", "-"),
            info.get("fingerprint", info.get("error", "-")),
        ]
        for filename, info in record.items()
    ]
    print(render_table(["snapshot", "status", "records", "fingerprint"],
                       rows, title=f"feeds under {feed_dir}/"))
    return 1 if any(v["status"] != "ok" for v in record.values()) else 0


def _scale_config(args: argparse.Namespace):
    from repro.nids.scale import ScaleConfig

    return ScaleConfig(
        size=args.size, seed=args.seed, fodder_fraction=args.fodder
    )


def _cmd_rules_gen(args: argparse.Namespace) -> int:
    from repro.nids.scale import generate_scaled

    for scaled in generate_scaled(_scale_config(args)):
        if args.dates:
            print(f"# published {scaled.published:%Y-%m-%d %H:%M}")
        print(scaled.text)
    return 0


def _cmd_rules_lint(args: argparse.Namespace) -> int:
    from repro.nids.scale import generate_scaled, lint_scaled

    scaled = generate_scaled(_scale_config(args))
    counts, unexpected = lint_scaled(scaled)
    for check in sorted(counts):
        print(f"{check}: {counts[check]}")
    fodder = sum(1 for item in scaled if item.fodder is not None)
    print(f"\n{sum(counts.values())} finding(s) across {len(scaled)} rules "
          f"({fodder} deliberate fodder)")
    if unexpected:
        print(f"\n{len(unexpected)} unexpected gating finding(s):")
        for finding in unexpected:
            print(f"  sid:{finding.sid}  [{finding.check}]  {finding.message}")
        return 1
    return 0


def _cmd_rules_bench(args: argparse.Namespace) -> int:
    from repro.nids.scale import throughput_sweep

    sizes = [int(piece) for piece in args.sizes.split(",") if piece]
    sweep = throughput_sweep(
        sizes=sizes,
        session_count=args.sessions,
        seed=args.seed,
        workers=args.workers,
    )
    if args.json:
        print(json.dumps(sweep, indent=2, sort_keys=True))
        return 0
    rows = []
    ok = True
    for entry in sweep["entries"]:
        serial = entry["serial"]
        parallel = entry["parallel"]
        ok = ok and entry["alerts_equal"]
        rows.append([
            entry["rules"],
            entry["prefilter_shards"],
            f"{serial['sessions_per_second']:,.0f}",
            f"{parallel['sessions_per_second']:,.0f}",
            serial["alerts"],
            "yes" if entry["alerts_equal"] else "NO",
        ])
    print(render_table(
        ["rules", "shards", "serial sess/s", "parallel sess/s", "alerts", "equal"],
        rows,
        title=f"rules-vs-throughput ({sweep['session_count']} sessions)",
    ))
    return 0 if ok else 1


def _cmd_rules(args: argparse.Namespace) -> int:
    command = getattr(args, "rules_command", None)
    if command == "gen":
        return _cmd_rules_gen(args)
    if command == "lint":
        return _cmd_rules_lint(args)
    if command == "bench":
        return _cmd_rules_bench(args)

    from repro.exploits.rulegen import generate_all_rule_texts

    if args.lint:
        from repro.nids.lint import lint_rules
        from repro.nids.parser import parse_rule as _parse

        rules = [
            _parse(text)
            for text, _ in generate_all_rule_texts(
                include_false_positives=not args.no_fp
            )
        ]
        findings = lint_rules(rules)
        for finding in findings:
            print(f"sid:{finding.sid}  [{finding.check}]  {finding.message}")
        print(f"\n{len(findings)} finding(s) across {len(rules)} rules")
        return 0

    for text, published in generate_all_rule_texts(
        include_false_positives=not args.no_fp
    ):
        print(f"# published {published:%Y-%m-%d %H:%M}")
        print(text)
    return 0


def _cmd_seeds(args: argparse.Namespace) -> int:
    from repro.datasets.seed_cves import SEED_CVES

    rows = [
        [
            seed.cve_id,
            f"{seed.published:%Y-%m-%d}",
            seed.events,
            seed.impact,
            seed.d_minus_p,
            seed.x_minus_p,
            seed.a_minus_p,
        ]
        for seed in SEED_CVES
    ]
    print(render_table(
        ["CVE", "P", "events", "CVSS", "D - P", "X - P", "A - P"],
        rows,
        title="Appendix E (encoded seed table)",
    ))
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    from repro.core.histories import (
        HOUSEHOLDER_SPRING_MODEL,
        THIS_WORK_MODEL,
        baseline_frequencies,
    )
    from repro.core.skill import PAPER_BASELINES

    hs = baseline_frequencies(HOUSEHOLDER_SPRING_MODEL)
    tw = baseline_frequencies(THIS_WORK_MODEL)
    rows = []
    for desid, hs_value in hs.items():
        rows.append([
            desid.label,
            f"{PAPER_BASELINES[desid.label]:.3f}",
            f"{float(hs_value):.3f}",
            f"{float(tw[desid]):.3f}",
        ])
    print(render_table(
        ["desideratum", "paper (H&S published)", "Markov (H&S prereqs)",
         "Markov (this-work prereqs)"],
        rows,
        title="Luck baselines",
    ))
    return 0


def _open_cache(args: argparse.Namespace):
    from repro.cache import StudyCache

    return StudyCache(root=args.cache_dir)


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    raise AssertionError("unreachable")


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    snapshot = cache.stats()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"cache root: {snapshot['root']}")
    print(f"entries: {snapshot['entry_count']} "
          f"({_format_bytes(snapshot['total_bytes'])}); "
          f"staging dirs: {snapshot['staging_count']}")
    if snapshot["entries"]:
        rows = []
        for entry in snapshot["entries"]:
            records = entry["records"]
            rows.append([
                entry["key"][:16],
                "yes" if entry["complete"] else "TORN",
                records.get("sessions", "-"),
                records.get("alerts", "-"),
                _format_bytes(entry["bytes"]),
                entry["config"].get("volume_scale", "-"),
                entry["config"].get("seed", "-"),
            ])
        print()
        print(render_table(
            ["key", "complete", "sessions", "alerts", "size",
             "scale", "seed"],
            rows,
        ))
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    reports = cache.verify(deep=not args.shallow)
    bad = [report for report in reports if not report.ok]
    for report in reports:
        print(report.summary)
    if bad and args.evict:
        import shutil

        for report in bad:
            shutil.rmtree(report.path, ignore_errors=True)
        print(f"\nevicted {len(bad)} failing entr"
              f"{'y' if len(bad) == 1 else 'ies'}")
        return 0
    print(f"\n{len(reports) - len(bad)} ok, {len(bad)} failing "
          f"of {len(reports)} entr{'y' if len(reports) == 1 else 'ies'}")
    return 1 if bad else 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from datetime import timedelta

    cache = _open_cache(args)
    report = cache.gc(
        max_age=(
            timedelta(days=args.max_age_days)
            if args.max_age_days is not None else None
        ),
        max_bytes=args.max_bytes,
    )
    print(f"staging dirs removed: {report.staging_removed}")
    print(f"torn entries removed: {report.torn_removed}")
    print(f"expired entries removed: {report.expired_removed}")
    print(f"size-bound evictions: {report.size_evicted}")
    print(f"freed: {_format_bytes(report.bytes_freed)}; kept: "
          f"{report.entries_kept} entr"
          f"{'y' if report.entries_kept == 1 else 'ies'} "
          f"({_format_bytes(report.bytes_kept)})")
    # Rolling watch-* manifests accumulate one file per window; the same
    # gc pass bounds them (always keeping each run's newest, the resume
    # point).
    manifest_report = cache.gc_manifests(
        max_age=(
            timedelta(days=args.watch_max_age_days)
            if args.watch_max_age_days is not None else None
        ),
        max_count=args.watch_max_count,
    )
    print(f"watch manifests removed: {manifest_report.manifests_removed} "
          f"({_format_bytes(manifest_report.bytes_freed)}); kept: "
          f"{manifest_report.manifests_kept}")
    # Orphaned scan arenas (SIGKILLed runs) squat on /dev/shm, not in the
    # cache directory, so the same gc pass sweeps them too.
    from repro.cache import collect_shm_garbage

    shm = collect_shm_garbage()
    print(f"orphaned shm arenas removed: {shm.segments_removed} "
          f"({_format_bytes(shm.bytes_freed)}); live kept: "
          f"{shm.segments_kept}")
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    removed = cache.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.root}")
    return 0


def _cmd_cache_checkpoints(args: argparse.Namespace) -> int:
    from datetime import timedelta

    from repro.cache import CheckpointStore

    store = CheckpointStore(root=args.cache_dir)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} checkpoint "
              f"{'key' if removed == 1 else 'keys'} "
              f"from {store.checkpoint_root}")
        return 0
    if args.max_age_days is not None:
        removed = store.gc(max_age=timedelta(days=args.max_age_days))
        print(f"gc removed {removed} checkpoint "
              f"{'key' if removed == 1 else 'keys'}")
    snapshot = store.stats()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"checkpoint root: {store.checkpoint_root}")
    print(f"keys: {snapshot['key_count']} "
          f"({_format_bytes(snapshot['total_bytes'])})")
    if snapshot["keys"]:
        now = time.time()
        rows = []
        for info in snapshot["keys"]:
            age_hours = max(0.0, now - float(info["newest"])) / 3600
            rows.append([
                str(info["key"])[:24],
                info["blobs"],
                info["chunks"],
                _format_bytes(int(info["bytes"])),
                f"{age_hours:.1f}h",
            ])
        print()
        print(render_table(
            ["key", "blobs", "chunks", "size", "age"], rows
        ))
    return 0


def _add_cache_commands(subparsers, common: argparse.ArgumentParser) -> None:
    cache_parser = subparsers.add_parser(
        "cache", help="study-cache maintenance"
    )
    cache_subparsers = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )

    stats_parser = cache_subparsers.add_parser(
        "stats", parents=[common],
        help="entry population, sizes, and telemetry",
    )
    stats_parser.set_defaults(func=_cmd_cache_stats)

    verify_parser = cache_subparsers.add_parser(
        "verify", parents=[common],
        help="check every entry against its checksum manifest",
    )
    verify_parser.add_argument(
        "--shallow", action="store_true",
        help="skip digest recomputation (existence and sizes only)",
    )
    verify_parser.add_argument(
        "--evict", action="store_true",
        help="remove entries that fail verification",
    )
    verify_parser.set_defaults(func=_cmd_cache_verify)

    gc_parser = cache_subparsers.add_parser(
        "gc", parents=[common],
        help="remove orphaned staging dirs, torn and bounded-out entries",
    )
    gc_parser.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="evict entries older than DAYS",
    )
    gc_parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="evict oldest entries until the cache fits in N bytes",
    )
    gc_parser.add_argument(
        "--watch-max-age-days", type=float, default=None, metavar="DAYS",
        help="remove rolling watch-* manifests older than DAYS "
             "(the newest per watch run is always kept)",
    )
    gc_parser.add_argument(
        "--watch-max-count", type=_positive_int, default=None, metavar="N",
        help="keep at most the N newest watch-* manifests per watch run",
    )
    gc_parser.set_defaults(func=_cmd_cache_gc)

    clear_parser = cache_subparsers.add_parser(
        "clear", parents=[common], help="drop every entry"
    )
    clear_parser.set_defaults(func=_cmd_cache_clear)

    checkpoints_parser = cache_subparsers.add_parser(
        "checkpoints", parents=[common],
        help="list, gc, or clear crash-recovery checkpoints",
    )
    checkpoints_parser.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="gc checkpoint keys whose newest blob is older than DAYS",
    )
    checkpoints_parser.add_argument(
        "--clear", action="store_true",
        help="drop every checkpoint key",
    )
    checkpoints_parser.set_defaults(func=_cmd_cache_checkpoints)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The CVE Wayback Machine' (IMC 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    common = common_parent()
    study = study_parent()

    run_parser = subparsers.add_parser(
        "run", parents=[common, study], help="run the full study"
    )
    run_parser.add_argument("--out", help="directory for exported artifacts")
    run_parser.set_defaults(func=_cmd_run)

    watch_parser = subparsers.add_parser(
        "watch", parents=[common, study],
        help="tail the arrival stream; incremental study per window",
    )
    watch_parser.add_argument(
        "--window-days", type=float, default=7.0, metavar="DAYS",
        help="arrival window span in days (default 7)",
    )
    watch_parser.add_argument(
        "--max-windows", type=_positive_int, default=None, metavar="N",
        help="stop after N windows (default: run the stream out)",
    )
    watch_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="rolling manifest directory "
             "(default <cache root>/manifests)",
    )
    watch_parser.set_defaults(func=_cmd_watch)

    serve_parser = subparsers.add_parser(
        "serve", parents=[common, study],
        help="HTTP query plane over a columnar study shard",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8321,
        help="bind port (default 8321; 0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--shard", default=None, metavar="PATH",
        help="serve an explicit shard file instead of the config's",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    query_parser = subparsers.add_parser(
        "query", parents=[common, study],
        help="answer one serve query offline from the shard",
    )
    from repro.store.service import QUERY_NAMES

    query_parser.add_argument("query", choices=list(QUERY_NAMES))
    query_parser.add_argument(
        "--shard", default=None, metavar="PATH",
        help="query an explicit shard file instead of the config's",
    )
    query_parser.add_argument(
        "--later", default=None, metavar="EVENT",
        help="windows query: the later lifecycle event (default A)",
    )
    query_parser.add_argument(
        "--earlier", default=None, metavar="EVENT",
        help="windows query: the earlier lifecycle event (default D)",
    )
    query_parser.add_argument(
        "--shifts", default=None, metavar="DAYS,DAYS,...",
        help="windows query: shifted-satisfaction shifts in days",
    )
    query_parser.add_argument(
        "--within", type=float, default=None, metavar="DAYS",
        help="windows query: narrow-violation window (default 30)",
    )
    query_parser.set_defaults(func=_cmd_query)

    experiment_parser = subparsers.add_parser(
        "experiment", parents=[common, study],
        help="regenerate one paper table/figure",
    )
    experiment_parser.add_argument("id", choices=list_experiments())
    experiment_parser.set_defaults(func=_cmd_experiment)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list, inspect, and run registered scenarios"
    )
    scenarios_subparsers = scenarios_parser.add_subparsers(
        dest="scenarios_command", required=True
    )
    scenarios_list_parser = scenarios_subparsers.add_parser(
        "list", parents=[common], help="registered scenarios (and components)"
    )
    scenarios_list_parser.add_argument(
        "--components", action="store_true",
        help="also list registered components by kind",
    )
    scenarios_list_parser.set_defaults(func=_cmd_scenarios_list)

    scenarios_show_parser = scenarios_subparsers.add_parser(
        "show", parents=[common, study],
        help="one scenario's spec, resolved components, and fingerprint",
    )
    scenarios_show_parser.add_argument("name", help="scenario name")
    scenarios_show_parser.set_defaults(func=_cmd_scenarios_show)

    scenarios_run_parser = scenarios_subparsers.add_parser(
        "run", parents=[common, study],
        help="run the full study under a scenario (same output as `run`)",
    )
    scenarios_run_parser.add_argument("name", help="scenario name")
    scenarios_run_parser.add_argument(
        "--out", help="directory for exported artifacts"
    )
    scenarios_run_parser.set_defaults(func=_cmd_scenarios_run)

    feeds_parser = subparsers.add_parser(
        "feeds", help="fetch, verify, and inspect real-feed snapshots"
    )
    feeds_subparsers = feeds_parser.add_subparsers(
        dest="feeds_command", required=True
    )

    def _feeds_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--feed-dir", default=None, metavar="DIR",
            help="snapshot directory (default ./feeds)",
        )
        sub.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )

    feeds_fetch_parser = feeds_subparsers.add_parser(
        "fetch",
        help="download feed snapshots (the only networked command; "
             "records content hashes)",
    )
    _feeds_args(feeds_fetch_parser)
    feeds_fetch_parser.add_argument(
        "names", nargs="*",
        help="snapshot filenames to fetch (default: all known feeds)",
    )
    feeds_fetch_parser.add_argument(
        "--url", default=None,
        help="explicit source URL (single snapshot only)",
    )
    feeds_fetch_parser.set_defaults(func=_cmd_feeds_fetch)

    feeds_verify_parser = feeds_subparsers.add_parser(
        "verify", help="recompute snapshot hashes against the manifest"
    )
    _feeds_args(feeds_verify_parser)
    feeds_verify_parser.set_defaults(func=_cmd_feeds_verify)

    feeds_show_parser = feeds_subparsers.add_parser(
        "show", help="parse local snapshots; record counts and fingerprints"
    )
    _feeds_args(feeds_show_parser)
    feeds_show_parser.set_defaults(func=_cmd_feeds_show)

    report_parser = subparsers.add_parser(
        "report", parents=[common, study],
        help="per-CVE lifecycle dossier",
    )
    report_parser.add_argument("cve", help="CVE id (e.g. CVE-2021-44228)")
    report_parser.set_defaults(func=_cmd_report)

    trace_parser = subparsers.add_parser(
        "trace", parents=[common],
        help="render a run manifest's span tree",
    )
    trace_parser.add_argument(
        "manifest", nargs="?", default=None,
        help="manifest path (default: newest under the cache root)",
    )
    trace_parser.add_argument(
        "--no-attrs", action="store_true",
        help="omit span attribute lines",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    metrics_parser = subparsers.add_parser(
        "metrics", parents=[common],
        help="render a run manifest's metrics snapshot",
    )
    metrics_parser.add_argument(
        "manifest", nargs="?", default=None,
        help="manifest path (default: newest under the cache root)",
    )
    metrics_parser.set_defaults(func=_cmd_metrics)

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(func=_cmd_list)

    rules_parser = subparsers.add_parser(
        "rules",
        help="generate, lint, and bench Snort rulesets "
        "(bare `rules` dumps the study ruleset)",
    )
    rules_parser.add_argument(
        "--no-fp", action="store_true",
        help="omit the deliberate false-positive signatures",
    )
    rules_parser.add_argument(
        "--lint", action="store_true",
        help="lint the study ruleset instead of printing it",
    )
    rules_parser.set_defaults(func=_cmd_rules)

    def _scaled_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--size", type=int, default=1000,
            help="scaled ruleset size (default 1000)",
        )
        sub.add_argument(
            "--seed", type=int, default=20260801,
            help="generator seed (default 20260801)",
        )
        sub.add_argument(
            "--fodder", type=float, default=0.01,
            help="fraction of deliberately unsound lint-fodder rules",
        )

    rules_subparsers = rules_parser.add_subparsers(dest="rules_command")
    gen_parser = rules_subparsers.add_parser(
        "gen", help="emit a scaled synthetic ruleset as Snort rule text"
    )
    _scaled_args(gen_parser)
    gen_parser.add_argument(
        "--dates", action="store_true",
        help="prefix each rule with a '# published ...' comment",
    )
    gen_parser.set_defaults(func=_cmd_rules)

    lint_parser = rules_subparsers.add_parser(
        "lint",
        help="lint a scaled ruleset; exit 1 on gating findings that do "
        "not map to deliberate fodder",
    )
    _scaled_args(lint_parser)
    lint_parser.set_defaults(func=_cmd_rules)

    rules_bench_parser = rules_subparsers.add_parser(
        "bench", help="rules-vs-throughput sweep (serial and parallel)"
    )
    rules_bench_parser.add_argument(
        "--sizes", default="64,1024,4096,10000",
        help="comma-separated ruleset sizes",
    )
    rules_bench_parser.add_argument(
        "--sessions", type=int, default=2000,
        help="synthetic session count per size",
    )
    rules_bench_parser.add_argument(
        "--seed", type=int, default=20260801, help="generator seed"
    )
    rules_bench_parser.add_argument(
        "--workers", type=int, default=2, help="parallel worker count"
    )
    rules_bench_parser.add_argument(
        "--json", action="store_true", help="emit the sweep record as JSON"
    )
    rules_bench_parser.set_defaults(func=_cmd_rules)

    seeds_parser = subparsers.add_parser(
        "seeds", help="print the Appendix E seed table"
    )
    seeds_parser.set_defaults(func=_cmd_seeds)

    baselines_parser = subparsers.add_parser(
        "baselines", help="paper vs computed luck baselines"
    )
    baselines_parser.set_defaults(func=_cmd_baselines)

    _add_cache_commands(subparsers, common)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
