"""Small statistics helpers used across the analyses.

The paper's figures are almost all empirical CDFs and binned counts of event
time differences; :class:`Ecdf` and :func:`bin_counts` are the shared
implementations behind those figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF over a finite sample.

    ``xs`` is the sorted sample and ``ps`` the cumulative probability at each
    sorted value, i.e. ``ps[i] = (i + 1) / n``.
    """

    xs: np.ndarray
    ps: np.ndarray

    @property
    def n(self) -> int:
        return int(self.xs.size)

    def at(self, x: float) -> float:
        """P(X <= x) under the empirical distribution.

        >>> Ecdf.from_values([1.0, 2.0, 3.0]).at(2.0)
        0.6666666666666666
        """
        if self.n == 0:
            raise ValueError("ECDF over empty sample")
        return float(np.searchsorted(self.xs, x, side="right")) / self.n

    def at_many(self, xs: Iterable[float]) -> np.ndarray:
        """Vectorized :meth:`at`: P(X <= x) for every x in one pass.

        One ``np.searchsorted`` over the whole query array instead of N
        scalar calls — the read-optimized query plane evaluates CDFs at
        many shift points per request and must not pay a Python loop.
        Each element equals the scalar :meth:`at` exactly.

        >>> Ecdf.from_values([1.0, 2.0, 3.0]).at_many([0.0, 2.0, 9.0]).tolist()
        [0.0, 0.6666666666666666, 1.0]
        """
        if self.n == 0:
            raise ValueError("ECDF over empty sample")
        queries = np.asarray(list(xs) if not isinstance(xs, np.ndarray) else xs,
                             dtype=float)
        positions = np.searchsorted(self.xs, queries, side="right")
        return positions.astype(float) / self.n

    def quantile(self, p: float) -> float:
        """Smallest sample value x with P(X <= x) >= p."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"quantile level out of range: {p}")
        if self.n == 0:
            raise ValueError("ECDF over empty sample")
        index = int(np.ceil(p * self.n)) - 1
        return float(self.xs[max(index, 0)])

    def series(self) -> List[Tuple[float, float]]:
        """The (x, P(X<=x)) step points, suitable for plotting/printing."""
        return [(float(x), float(p)) for x, p in zip(self.xs, self.ps)]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Ecdf":
        xs = np.sort(np.asarray(list(values), dtype=float))
        if xs.size == 0:
            return cls(xs=xs, ps=xs.copy())
        ps = np.arange(1, xs.size + 1, dtype=float) / xs.size
        return cls(xs=xs, ps=ps)


def ecdf(values: Iterable[float]) -> Ecdf:
    """Build an :class:`Ecdf` from an iterable of floats."""
    return Ecdf.from_values(values)


def fraction(items: Sequence[T], predicate: Callable[[T], bool]) -> float:
    """Fraction of items satisfying a predicate.

    >>> fraction([1, 2, 3, 4], lambda x: x % 2 == 0)
    0.5
    """
    if not items:
        raise ValueError("fraction over empty sequence")
    return sum(1 for item in items if predicate(item)) / len(items)


def bin_counts(
    values: Iterable[float], *, bin_width: float, lo: float, hi: float
) -> List[Tuple[float, int]]:
    """Counts of values in fixed-width bins over [lo, hi).

    Returns (bin_left_edge, count) for every bin, including empty ones, so
    that histogram series have stable shapes.  Values outside [lo, hi) are
    ignored.

    >>> bin_counts([0.5, 1.5, 1.6], bin_width=1.0, lo=0.0, hi=3.0)
    [(0.0, 1), (1.0, 2), (2.0, 0)]

    Non-representable widths (0.1, 0.2, ...) must not drift: the final
    edge lands exactly on ``hi`` and the labels stay clean.

    >>> [edge for edge, _ in bin_counts([], bin_width=0.1, lo=0.0, hi=0.5)]
    [0.0, 0.1, 0.2, 0.3, 0.4]
    >>> bin_counts([0.999999], bin_width=0.1, lo=0.0, hi=1.0)[-1]
    (0.9, 1)

    When ``bin_width`` does not divide ``hi - lo``, the leftover tail gets a
    final *partial* bin covering ``[lo + floor(span)*width, hi)`` — every
    value passing the ``[lo, hi)`` filter is counted somewhere, rather than
    silently vanishing past the last full edge.  (Partial over clamped: a
    clamped last bin would mislabel its population as ending a full width
    earlier than it does.)

    >>> bin_counts([9.5], bin_width=3.0, lo=0.0, hi=10.0)
    [(0.0, 0), (3.0, 0), (6.0, 0), (9.0, 1)]
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if hi <= lo:
        raise ValueError("empty bin range")
    # An accumulating np.arange(lo, hi + w/2, w) drifts for widths with no
    # exact binary representation (its last edge can fall short of hi,
    # silently dropping in-range values near the top).  Derive an integer
    # bin count instead and let linspace divide [lo, hi] exactly; a
    # non-dividing width keeps its floor(range / width) full bins plus one
    # partial bin reaching hi.
    span = (hi - lo) / bin_width
    divides = abs(span - round(span)) < 1e-9
    n_bins = max(1, round(span) if divides else int(span))
    top = hi if divides else lo + n_bins * bin_width
    edges = np.linspace(lo, top, n_bins + 1)
    if top < hi:
        # A width wider than the whole range (n_bins forced to 1) already
        # covers [lo, hi); otherwise emit the partial tail bin [top, hi).
        edges = np.append(edges, hi)
    data = np.asarray(list(values), dtype=float)
    data = data[(data >= lo) & (data < hi)]
    counts, _ = np.histogram(data, bins=edges)
    return [
        (float(np.round(edge, 12)), int(count))
        for edge, count in zip(edges[:-1], counts)
    ]


def quantile(values: Iterable[float], p: float) -> float:
    """Empirical quantile (type-1 / inverse-ECDF convention)."""
    return Ecdf.from_values(values).quantile(p)
