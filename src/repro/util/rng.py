"""Deterministic random-stream derivation.

Every stochastic component of the simulator (per-CVE traffic, per-actor
behaviour, IP allocation) draws from an independent substream derived from a
root seed plus a tuple of string/int keys.  Derivation is stable across runs,
machines, and Python hash randomisation, which makes experiments exactly
reproducible and lets tests pin expected values.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Key = Union[str, int, bytes]


def derive_seed(root_seed: int, *keys: Key) -> int:
    """Derive a 64-bit seed from a root seed and a key path.

    Uses BLAKE2b over the canonical encoding of the key path, so any change
    to any component of the path yields an unrelated stream.

    >>> derive_seed(7, "cve", "CVE-2021-44228") == derive_seed(7, "cve", "CVE-2021-44228")
    True
    >>> derive_seed(7, "a") != derive_seed(7, "b")
    True
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(root_seed.to_bytes(16, "little", signed=True))
    for key in keys:
        if isinstance(key, str):
            encoded = b"s" + key.encode("utf-8")
        elif isinstance(key, bytes):
            encoded = b"b" + key
        elif isinstance(key, int):
            encoded = b"i" + key.to_bytes(16, "little", signed=True)
        else:
            raise TypeError(f"unsupported key type: {type(key)!r}")
        hasher.update(len(encoded).to_bytes(4, "little"))
        hasher.update(encoded)
    return int.from_bytes(hasher.digest(), "little")


def derive_rng(root_seed: int, *keys: Key) -> np.random.Generator:
    """A numpy Generator seeded by :func:`derive_seed` over the key path."""
    return np.random.default_rng(derive_seed(root_seed, *keys))
