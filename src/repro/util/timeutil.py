"""Time handling for lifecycle measurement.

The paper reports event offsets in a compact ``"90d 12h"`` notation (see
Appendix E).  This module parses and formats that notation, and provides a
:class:`TimeWindow` describing a measurement window such as DSCOPE's two-year
collection period.

All datetimes in this package are timezone-naive and interpreted as UTC.
Offsets are represented as :class:`datetime.timedelta` (aliased to
:data:`Duration` for readability in signatures).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Iterator, Optional

Duration = timedelta

_OFFSET_RE = re.compile(
    r"^\s*(?P<sign>-)?\s*"
    r"(?:(?P<days>\d+)d)?\s*"
    r"(?:(?P<hours>\d+)h)?\s*"
    r"(?:(?P<minutes>\d+)m)?\s*$"
)


def utc(year: int, month: int, day: int, hour: int = 0, minute: int = 0) -> datetime:
    """Construct a (naive, UTC-interpreted) datetime.

    >>> utc(2021, 12, 10)
    datetime.datetime(2021, 12, 10, 0, 0)
    """
    return datetime(year, month, day, hour, minute)


def parse_offset(text: str) -> Duration:
    """Parse a paper-style offset such as ``"90d 12h"`` or ``"-121d 10h"``.

    The sign applies to the whole offset: ``"-0d 7h"`` is minus seven hours.

    >>> parse_offset("1d 12h")
    datetime.timedelta(days=1, seconds=43200)
    >>> parse_offset("-0d 7h")
    datetime.timedelta(days=-1, seconds=61200)
    """
    match = _OFFSET_RE.match(text)
    if match is None or not any(match.group(g) for g in ("days", "hours", "minutes")):
        raise ValueError(f"unparseable offset: {text!r}")
    magnitude = timedelta(
        days=int(match.group("days") or 0),
        hours=int(match.group("hours") or 0),
        minutes=int(match.group("minutes") or 0),
    )
    return -magnitude if match.group("sign") else magnitude


def format_offset(delta: Duration) -> str:
    """Format a timedelta in the paper's ``"90d 12h"`` notation.

    A nonzero minute component is emitted as a trailing ``Nm`` (the paper
    only prints whole hours, but dropping minutes silently would break the
    parse → format → parse round trip).

    >>> format_offset(timedelta(days=90, hours=12))
    '90d 12h'
    >>> format_offset(timedelta(hours=-7))
    '-0d 7h'
    >>> format_offset(timedelta(minutes=30))
    '0d 0h 30m'
    >>> parse_offset(format_offset(parse_offset("0d 0h 30m")))
    datetime.timedelta(seconds=1800)
    """
    sign = "-" if delta < timedelta(0) else ""
    magnitude = abs(delta)
    total_minutes = int(magnitude.total_seconds() // 60)
    total_hours, minutes = divmod(total_minutes, 60)
    text = f"{sign}{total_hours // 24}d {total_hours % 24}h"
    if minutes:
        text += f" {minutes}m"
    return text


def to_days(delta: Duration) -> float:
    """Convert a timedelta to fractional days."""
    return delta.total_seconds() / 86400.0


def to_hours(delta: Duration) -> float:
    """Convert a timedelta to fractional hours."""
    return delta.total_seconds() / 3600.0


def days(count: float) -> Duration:
    """Shorthand for ``timedelta(days=count)``."""
    return timedelta(days=count)


def hours(count: float) -> Duration:
    """Shorthand for ``timedelta(hours=count)``."""
    return timedelta(hours=count)


@dataclass(frozen=True)
class TimeWindow:
    """A half-open measurement window ``[start, end)``.

    DSCOPE's collection window is March 2021 through March 2023; analyses
    regularly need to clamp, iterate, and normalise timestamps relative to a
    window, so those operations live here.
    """

    start: datetime
    end: datetime

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window: {self.start} .. {self.end}")

    @property
    def duration(self) -> Duration:
        return self.end - self.start

    def contains(self, when: datetime) -> bool:
        """Whether ``when`` falls inside the half-open window."""
        return self.start <= when < self.end

    def clamp(self, when: datetime) -> datetime:
        """Clamp a timestamp into the window (end-exclusive by a minute)."""
        if when < self.start:
            return self.start
        if when >= self.end:
            return self.end - timedelta(minutes=1)
        return when

    def elapsed(self, when: datetime) -> Duration:
        """Offset of ``when`` from the window start (may be negative)."""
        return when - self.start

    def fraction(self, when: datetime) -> float:
        """Position of ``when`` in the window as a 0..1 fraction."""
        return self.elapsed(when) / self.duration

    def iter_days(self) -> Iterator[datetime]:
        """Yield the start of each UTC day overlapping the window."""
        cursor = self.start.replace(hour=0, minute=0, second=0, microsecond=0)
        while cursor < self.end:
            yield cursor
            cursor += timedelta(days=1)

    def intersect(self, other: "TimeWindow") -> Optional["TimeWindow"]:
        """Intersection with another window, or None when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= start:
            return None
        return TimeWindow(start, end)
