"""Shared utilities: time handling, deterministic RNG streams, statistics,
ASCII tables, and IPv4 helpers.

These modules deliberately have no dependencies on the rest of the package so
that every subsystem (telescope, NIDS, datasets, analysis) can build on them
without import cycles.
"""

from repro.util.timeutil import (
    Duration,
    TimeWindow,
    format_offset,
    hours,
    days,
    parse_offset,
    to_days,
    to_hours,
    utc,
)
from repro.util.rng import derive_rng, derive_seed
from repro.util.stats import (
    Ecdf,
    bin_counts,
    ecdf,
    fraction,
    quantile,
)
from repro.util.tables import render_table
from repro.util.iputil import (
    format_ipv4,
    ipv4_in_network,
    parse_ipv4,
)

__all__ = [
    "Duration",
    "TimeWindow",
    "format_offset",
    "hours",
    "days",
    "parse_offset",
    "to_days",
    "to_hours",
    "utc",
    "derive_rng",
    "derive_seed",
    "Ecdf",
    "bin_counts",
    "ecdf",
    "fraction",
    "quantile",
    "render_table",
    "format_ipv4",
    "ipv4_in_network",
    "parse_ipv4",
]
