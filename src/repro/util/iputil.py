"""IPv4 helpers.

The telescope and traffic subsystems manipulate millions of addresses, so
addresses are plain ints throughout the hot paths; these helpers convert at
the edges and test CIDR membership without allocating objects.
"""

from __future__ import annotations

from typing import Tuple


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit int.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit int as dotted-quad.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit address: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_cidr(text: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/n`` into (network_base, prefix_length).

    The base is masked to the prefix, so ``10.0.0.5/8`` normalises to the
    ``10.0.0.0`` base.
    """
    address_text, _, prefix_text = text.partition("/")
    if not prefix_text:
        raise ValueError(f"missing prefix length: {text!r}")
    prefix = int(prefix_text)
    if not 0 <= prefix <= 32:
        raise ValueError(f"prefix out of range: {text!r}")
    mask = 0xFFFFFFFF ^ ((1 << (32 - prefix)) - 1) if prefix else 0
    return parse_ipv4(address_text) & mask, prefix


def ipv4_in_network(address: int, network: Tuple[int, int]) -> bool:
    """Whether an address (int) falls within (base, prefix).

    >>> ipv4_in_network(parse_ipv4("10.1.2.3"), parse_cidr("10.0.0.0/8"))
    True
    """
    base, prefix = network
    if prefix == 0:
        return True
    mask = 0xFFFFFFFF ^ ((1 << (32 - prefix)) - 1)
    return (address & mask) == base


def network_size(network: Tuple[int, int]) -> int:
    """Number of addresses in a (base, prefix) network."""
    return 1 << (32 - network[1])
