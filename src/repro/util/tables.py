"""Plain-text table rendering for benchmark and experiment output.

The benchmark harness prints the same rows the paper reports; this renderer
keeps the output aligned and diff-friendly without pulling in dependencies.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with two decimals (the paper's precision); None is
    rendered as ``-`` to match Appendix E's missing-data convention.
    """
    text_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows)) if text_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
