"""Thin setup.py kept for environments without the `wheel` package, where
PEP 660 editable installs are unavailable (`python setup.py develop`)."""

from setuptools import setup

setup()
