"""Benchmark: regenerate Table 4 (per-CVE desiderata satisfaction + skill).

Headline reproduction: every satisfaction rate within 0.05 of the paper,
mean skill ~0.37, 8 of 9 desiderata skillful with X < A the sole negative.
"""

from repro.core.skill import compute_skill, mean_skill

from conftest import bench_experiment


def test_table4(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "table4")
    for key, deviation in result.deviations().items():
        assert abs(deviation) <= 0.05, (key, deviation)
    reports = compute_skill(study_full.timelines.values())
    assert sum(1 for r in reports if r.skill > 0) == 8
    negatives = [r.desideratum.label for r in reports if r.skill < 0]
    assert negatives == ["X < A"]
