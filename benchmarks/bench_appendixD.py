"""Benchmark: regenerate Appendix D (Figures 13-18 time-difference CDFs)."""

from conftest import bench_experiment


def test_appendix_d(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "appendixD")
    for key, deviation in result.deviations().items():
        assert abs(deviation) <= 0.03, (key, deviation)
