"""Benchmark: regenerate Figure 9 (Log4Shell variant CDFs, Dec 2021)."""

from conftest import bench_experiment


def test_figure9(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig9")
    assert result.measured["groups active in December (of 5)"] == 5.0
