"""Latency/throughput benchmark for the ``repro serve`` query plane.

Packs the session's study into a columnar shard, maps it zero-copy, and
drives the asyncio server with closed-loop clients at concurrency 1/16/64.
Each level is measured twice against a *fresh* server process state:

* **cold** — the shard was just mmapped and the service's body memo is
  empty, so the pass pays page faults plus one vectorized-kernel run per
  distinct query;
* **warm** — the same server immediately afterwards, where every request
  is a memo lookup streamed into the socket.

Per-request wall times give p50/p99; the pass's span gives requests/sec.
Results land in ``results/BENCH_serve.json`` so the serving plane's perf
trajectory is tracked across PRs alongside ``BENCH_pipeline.json``.
Request count per level scales with ``REPRO_BENCH_SERVE_REQUESTS``
(default 300).
"""

import asyncio
import json
import os
import time

from repro.store import ColumnarStudy, ShardStore, StudyServer, StudyService

REQUESTS_PER_LEVEL = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "300"))
CONCURRENCY_LEVELS = (1, 16, 64)

#: A mixed read workload: every query family, two window variants.
TARGETS = [
    "/v1/skill",
    "/v1/lifecycle",
    "/v1/vendors",
    "/v1/kev",
    "/v1/describe",
    "/v1/windows?later=A&earlier=D",
    "/v1/windows?later=X&earlier=F",
]


async def _worker(host, port, targets, latencies):
    """One keep-alive connection issuing its share of the workload."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for target in targets:
            started = time.perf_counter()
            writer.write(
                f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(b" ", 2)[1])
            length = 0
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            if length:
                await reader.readexactly(length)
            latencies.append(time.perf_counter() - started)
            assert status == 200, f"{target}: HTTP {status}"
    finally:
        writer.close()


async def _drive(host, port, *, concurrency, total):
    """Run ``total`` requests over ``concurrency`` connections.

    Returns (per-request latencies, elapsed wall seconds).
    """
    latencies = []
    shares = [
        [TARGETS[i % len(TARGETS)] for i in range(worker, total, concurrency)]
        for worker in range(concurrency)
    ]
    started = time.perf_counter()
    await asyncio.gather(
        *[_worker(host, port, share, latencies) for share in shares if share]
    )
    return latencies, time.perf_counter() - started


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _stats(latencies, elapsed):
    ordered = sorted(latencies)
    return {
        "requests": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
        "requests_per_sec": round(len(ordered) / elapsed, 1)
        if elapsed > 0 else None,
    }


async def _bench_level(store, etag, concurrency):
    """Cold and warm passes at one concurrency, each on a fresh mmap."""
    study = store.load(etag)
    assert study is not None
    server = StudyServer(StudyService(study))
    host, port = await server.start()
    try:
        cold = _stats(
            *await _drive(
                host, port, concurrency=concurrency, total=REQUESTS_PER_LEVEL
            )
        )
        warm = _stats(
            *await _drive(
                host, port, concurrency=concurrency, total=REQUESTS_PER_LEVEL
            )
        )
    finally:
        await server.close()
    return {"concurrency": concurrency, "cold": cold, "warm": warm}


def test_serve_latency_throughput(study_full, results_dir, tmp_path):
    packed = ColumnarStudy.from_study(study_full)
    store = ShardStore(tmp_path)
    shard_path = store.save(packed)

    levels = [
        asyncio.run(_bench_level(store, packed.etag, concurrency))
        for concurrency in CONCURRENCY_LEVELS
    ]

    report = {
        "etag": packed.etag,
        "shard_bytes": shard_path.stat().st_size,
        "counts": packed.meta["counts"],
        "targets": TARGETS,
        "requests_per_level": REQUESTS_PER_LEVEL,
        "levels": levels,
    }
    (results_dir / "BENCH_serve.json").write_text(
        json.dumps(report, indent=1, sort_keys=True) + "\n"
    )
    print(f"\n[serve] shard {shard_path.stat().st_size / 1024:.0f} KiB")
    for level in levels:
        print(
            f"[serve] c={level['concurrency']:>2}  "
            f"cold p50={level['cold']['p50_ms']}ms "
            f"p99={level['cold']['p99_ms']}ms "
            f"{level['cold']['requests_per_sec']} req/s  |  "
            f"warm p50={level['warm']['p50_ms']}ms "
            f"p99={level['warm']['p99_ms']}ms "
            f"{level['warm']['requests_per_sec']} req/s"
        )

    # The serving plane must answer from the shard, not by re-deriving:
    # warm medians should sit in the sub-millisecond-to-a-few-ms band even
    # on a loaded host, and never be slower than the cold pass's p99.
    for level in levels:
        assert level["warm"]["p50_ms"] <= max(
            level["cold"]["p99_ms"], level["warm"]["p99_ms"]
        )
