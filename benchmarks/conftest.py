"""Benchmark harness fixtures.

One full-scale study run (the paper's two years of traffic, ~117k exploit
events; scale with ``REPRO_BENCH_SCALE``) is shared by every benchmark.
Each bench times the *regeneration* of one paper artifact from that run,
asserts the measured values land within shape tolerance of the paper, and
writes a paper-vs-measured report to ``benchmarks/results/``.

The run's heavy intermediates are served from the on-disk study cache
(``~/.cache/repro`` unless ``REPRO_CACHE_DIR`` overrides it), so repeated
bench sessions — and any other process studying the same configuration —
skip generation, capture, and scanning entirely.  Set ``REPRO_BENCH_CACHE=0``
to force a cold build, and ``REPRO_BENCH_WORKERS`` to parallelise one.

Every cached session starts with a cache GC pass: orphaned staging dirs and
torn entries are removed (so a crashed earlier bench can never wedge the
key), and ``REPRO_BENCH_CACHE_MAX_BYTES`` optionally bounds the cache's
total size, evicting oldest entries first.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.pipeline import StudyConfig, StudyResult, run_study
from repro.cache import StudyCache
from repro.experiments.registry import ExperimentResult, run_experiment

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "1") != "0"
BENCH_CACHE_MAX_BYTES = (
    int(os.environ["REPRO_BENCH_CACHE_MAX_BYTES"])
    if os.environ.get("REPRO_BENCH_CACHE_MAX_BYTES")
    else None
)


def bench_config() -> StudyConfig:
    """The configuration every benchmark session studies."""
    return StudyConfig(
        volume_scale=BENCH_SCALE,
        background_per_exploit=1.0,
        background_nvd_count=20000,
        workers=BENCH_WORKERS,
    )


@pytest.fixture(scope="session")
def study_full() -> StudyResult:
    """The study run benchmarks analyse (cached across sessions)."""
    cache = None
    if BENCH_CACHE:
        cache = StudyCache()
        # Self-heal before studying: a bench killed mid-save must not leave
        # staging debris or a torn entry wedging this configuration's key.
        cache.gc(max_bytes=BENCH_CACHE_MAX_BYTES)
    # Manifests land under benchmarks/results/ so every bench session is
    # self-describing (span tree, metrics, cache/recovery outcomes) even
    # when the study cache is disabled.
    manifest_dir = Path(__file__).parent / "results" / "manifests"
    result = run_study(bench_config(), cache=cache, manifest=manifest_dir)
    cache_telemetry = result.telemetry.cache
    if cache_telemetry is not None:
        print(
            f"\n[study cache] {'hit' if result.from_cache else 'miss'} "
            f"(hits={cache_telemetry.hits} misses={cache_telemetry.misses} "
            f"evictions={cache_telemetry.evictions} "
            f"integrity_failures={cache_telemetry.integrity_failures})"
        )
    if result.telemetry.manifest_path is not None:
        print(f"[run manifest] {result.telemetry.manifest_path}")
    scan = result.telemetry.scan
    if scan is not None and (
        scan.chunk_retries or scan.pool_respawns or scan.poison_chunks
        or scan.recovered_chunks or scan.checkpoint_hits
    ):
        print(
            f"[scan recovery] retries={scan.chunk_retries} "
            f"respawns={scan.pool_respawns} "
            f"recovered={scan.recovered_chunks} "
            f"poison={scan.poison_chunks} "
            f"checkpoint_hits={scan.checkpoint_hits}"
        )
    return result


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


def write_report(results_dir: Path, result: ExperimentResult) -> None:
    """Persist one experiment's paper-vs-measured report."""
    lines = [f"{result.experiment_id}: {result.title}", ""]
    if result.paper:
        lines.append(f"{'quantity':45s} {'paper':>10s} {'measured':>10s}")
        for key, paper_value in result.paper.items():
            measured = result.measured.get(key)
            measured_text = f"{measured:10.3f}" if measured is not None else "      -"
            lines.append(f"{key:45s} {paper_value:10.3f} {measured_text}")
        lines.append("")
    extra = {
        key: value for key, value in result.measured.items()
        if key not in result.paper
    }
    if extra:
        lines.append("additional measured quantities:")
        for key, value in extra.items():
            lines.append(f"  {key}: {value:.3f}")
        lines.append("")
    lines.append(result.text)
    (results_dir / f"{result.experiment_id}.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )


def bench_experiment(
    benchmark, study: StudyResult, results_dir: Path, experiment_id: str
) -> ExperimentResult:
    """Time an experiment's regeneration and persist its report."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, study), rounds=3, iterations=1
    )
    write_report(results_dir, result)
    return result
