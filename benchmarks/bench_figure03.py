"""Benchmark: regenerate Figure 3 (exploit events over the study)."""

from conftest import bench_experiment


def test_figure3(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig3")
    assert result.measured["second half share exceeds first"] == 1.0
