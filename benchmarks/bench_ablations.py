"""Ablation benchmarks for the study's methodological choices.

Each ablation flips one design decision the paper (or DESIGN.md) calls out
and quantifies its effect:

* port-insensitive rule rewriting (Section 3.1) — how much exploit traffic
  port-constrained rules would miss;
* the registered-user rule-feed delay (Section 5 footnote 2) — how a 30-day
  delay collapses defense-before-attack;
* paper-published vs exactly computed Markov luck baselines — how the skill
  picture shifts;
* telescope instance lifetime — IP coverage vs capture, the DSCOPE design
  parameter;
* the root-cause-analysis threshold — false-positive pruning robustness;
* bootstrap confidence intervals for Table 4's skills.
"""

from datetime import timedelta

from repro.analysis.pipeline import StudyConfig, run_study
from repro.core.bootstrap import bootstrap_skill
from repro.core.histories import HOUSEHOLDER_SPRING_MODEL
from repro.core.skill import compute_skill, mean_skill
from repro.datasets.loader import build_bundle
from repro.datasets.seed_cves import STUDY_WINDOW
from repro.datasets.sources import default_plan
from repro.exploits.rulegen import build_study_ruleset
from repro.lifecycle.assembly import assemble_timelines
from repro.lifecycle.exploit_events import events_by_cve, events_from_alerts
from repro.lifecycle.rca import RootCauseAnalysis
from repro.nids.engine import DetectionEngine
from repro.telescope.collector import DscopeCollector
from repro.telescope.config import TelescopeConfig
from repro.traffic.generator import TrafficConfig, TrafficGenerator


def _small_store():
    arrivals = TrafficGenerator(
        TrafficConfig(volume_scale=0.02, background_per_exploit=0.5)
    ).generate()
    collector = DscopeCollector(window=STUDY_WINDOW)
    store = collector.collect(arrivals)
    exploit_count = sum(1 for a in arrivals if a.truth_cve is not None)
    return store, exploit_count


def test_ablation_port_insensitivity(benchmark, results_dir):
    """Port-constrained rules miss off-port and pre-publication scanning."""
    store, exploit_count = _small_store()
    insensitive = build_study_ruleset(port_insensitive=True)
    sensitive = build_study_ruleset(port_insensitive=False)

    def scan_both():
        hits_insensitive = len(DetectionEngine(insensitive).scan(store))
        hits_sensitive = len(DetectionEngine(sensitive).scan(store))
        return hits_insensitive, hits_sensitive

    hits_insensitive, hits_sensitive = benchmark.pedantic(
        scan_both, rounds=2, iterations=1
    )
    missed = 1.0 - hits_sensitive / hits_insensitive
    (results_dir / "ablation_ports.txt").write_text(
        f"port-insensitive alerts: {hits_insensitive}\n"
        f"port-sensitive alerts:   {hits_sensitive}\n"
        f"traffic missed by port-constrained rules: {missed:.1%}\n"
    )
    # The generator sprays ~15% of post-publication traffic off-port and all
    # pre-publication traffic across ports; constrained rules must miss a
    # meaningful share.
    assert missed > 0.10


def test_ablation_rule_feed_delay(benchmark, results_dir):
    """The 30-day registered-user delay collapses D < A."""

    def sweep():
        rows = []
        for delay in (0, 7, 30, 90):
            bundle = build_bundle(
                default_plan(rule_delay_days=delay, background_count=100)
            )
            timelines = assemble_timelines(bundle)
            reports = {
                r.desideratum.label: r
                for r in compute_skill(timelines.values())
            }
            rows.append((delay, reports["D < A"].observed, reports["D < A"].skill))
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    lines = ["delay_days  D<A_satisfied  D<A_skill"]
    for delay, satisfied, skill_value in rows:
        lines.append(f"{delay:10d}  {satisfied:13.2f}  {skill_value:9.2f}")
    (results_dir / "ablation_rule_delay.txt").write_text("\n".join(lines) + "\n")
    by_delay = {delay: satisfied for delay, satisfied, _ in rows}
    assert by_delay[0] > by_delay[30] > by_delay[90]
    # Footnote 2: the delay "drastically reduces the effectiveness of IDS".
    assert by_delay[0] - by_delay[30] > 0.10


def test_ablation_baseline_model(benchmark, results_dir):
    """Paper-published vs computed Markov baselines."""
    bundle = build_bundle(default_plan(background_count=100))
    timelines = assemble_timelines(bundle)

    def both():
        paper = compute_skill(timelines.values())
        markov = compute_skill(timelines.values(), model=HOUSEHOLDER_SPRING_MODEL)
        return paper, markov

    paper, markov = benchmark.pedantic(both, rounds=3, iterations=1)
    lines = ["desideratum  paper_skill  markov_skill"]
    for p, m in zip(paper, markov):
        lines.append(
            f"{p.desideratum.label:11s}  {p.skill:11.2f}  {m.skill:12.2f}"
        )
    lines.append(
        f"mean         {mean_skill(paper):11.2f}  {mean_skill(markov):12.2f}"
    )
    (results_dir / "ablation_baselines.txt").write_text("\n".join(lines) + "\n")
    # Qualitative agreement: both models find CVD skillful on average and
    # agree D-desiderata carry large positive skill.
    assert mean_skill(paper) > 0.2 and mean_skill(markov) > 0.2


def test_ablation_telescope_lifetime(benchmark, results_dir):
    """Instance lifetime trades unique-IP coverage for per-IP dwell."""
    arrivals = TrafficGenerator(
        TrafficConfig(volume_scale=0.01, background_per_exploit=0.2)
    ).generate()

    def sweep():
        rows = []
        for minutes in (1, 10, 60):
            collector = DscopeCollector(
                TelescopeConfig(instance_lifetime=timedelta(minutes=minutes)),
                window=STUDY_WINDOW,
            )
            store = collector.collect(arrivals)
            rows.append(
                (minutes, collector.expected_unique_ips, len(store))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["lifetime_min  expected_unique_ips  sessions_captured"]
    for minutes, unique_ips, sessions in rows:
        lines.append(f"{minutes:12d}  {unique_ips:19,d}  {sessions:17,d}")
    (results_dir / "ablation_telescope.txt").write_text("\n".join(lines) + "\n")
    by_lifetime = {minutes: unique for minutes, unique, _ in rows}
    assert by_lifetime[1] > by_lifetime[10] > by_lifetime[60]
    # Capture volume is lifetime-independent (arrivals always land on a
    # live instance); coverage is the lever.
    assert len({sessions for _, _, sessions in rows}) == 1


def test_ablation_rca_threshold(benchmark, results_dir):
    """RCA pruning is robust across a wide threshold band."""
    result = run_study(
        StudyConfig(volume_scale=0.02, background_per_exploit=0.5,
                    background_nvd_count=500)
    )
    grouped = events_by_cve(events_from_alerts(result.alerts))

    def sweep():
        rows = []
        for threshold in (0.1, 0.3, 0.5, 0.7, 0.9):
            rca = RootCauseAnalysis(result.store, exploit_threshold=threshold)
            kept, _ = rca.filter(grouped)
            rows.append((threshold, len(kept)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["threshold  kept_cves"] + [
        f"{threshold:9.1f}  {kept:9d}" for threshold, kept in rows
    ]
    (results_dir / "ablation_rca.txt").write_text("\n".join(lines) + "\n")
    # 64 genuine CVEs survive and 2 fakes are dropped at every threshold in
    # the band — the decision is not a knife edge.
    assert all(kept == 64 for _, kept in rows)


def test_skill_confidence_intervals(benchmark, study_full, results_dir):
    """Bootstrap CIs for Table 4 (the Section 8 measurement extension)."""
    report = benchmark.pedantic(
        bootstrap_skill,
        args=(list(study_full.timelines.values()),),
        kwargs=dict(resamples=1000),
        rounds=2,
        iterations=1,
    )
    lines = ["desideratum  skill  95% CI"]
    for interval in report.intervals:
        lines.append(
            f"{interval.desideratum.label:11s}  {interval.skill_point:5.2f}  "
            f"[{interval.skill_low:5.2f}, {interval.skill_high:5.2f}]"
            f"{'  *' if interval.significantly_skillful else ''}"
        )
    lines.append(
        f"mean skill   {report.mean_skill_point:5.2f}  "
        f"[{report.mean_skill_low:5.2f}, {report.mean_skill_high:5.2f}]"
    )
    (results_dir / "skill_confidence.txt").write_text("\n".join(lines) + "\n")
    assert report.mean_skill_low > 0.2  # CVD skill is significant
    assert report.interval("X < A").skill_high < 0.15  # and X<A is not
