"""Benchmark: regenerate Figure 7 (exposure CDFs by mitigation).

Shape targets: the vast majority of exploit events arrive after signature
deployment (paper: 95%), and half the unmitigated exposure lands within
~30 days of publication (Finding 12).
"""

from conftest import bench_experiment


def test_figure7(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig7")
    assert result.measured["mitigated share"] > 0.85
    assert 15.0 <= result.measured["unmitigated half-life (days)"] <= 45.0
