"""Performance benchmarks for the measurement stack itself.

Unlike the per-figure benches (which time artifact regeneration on a cached
study run), these measure the system's throughput: traffic generation,
telescope capture, and NIDS scanning — the pieces a downstream user would
size a deployment with.

``test_nids_scan_engines`` additionally times the scan on the
session-scoped full-scale store with both prefilter engines — the
Aho-Corasick reference baseline and the C-speed regex prefilter — serial
and multiprocess, and writes a machine-readable
``results/BENCH_pipeline.json`` (sessions/sec per engine, prefilter
speedup, parallel speedup, scan telemetry), so the perf trajectory is
tracked across PRs.  Each timing takes the best of
``REPRO_BENCH_REPEATS`` runs (default 3): wall times on shared hosts
swing several-fold under load, and min-of-K is the standard noise
rejection.  Worker count defaults to 4; override with
``REPRO_BENCH_SCAN_WORKERS``.

The parallel numbers carry their context: both ``os.cpu_count()`` and the
*schedulable* core count (``len(os.sched_getaffinity(0))`` — containers
routinely pin a 64-core box to 1 core) are recorded, and any row whose
worker count exceeds the schedulable cores is annotated ``oversubscribed``
/ ``unreliable`` — its speedup measures contention, not the transfer
plane.  ``worker_sweep`` rows force the pool on (``threshold=0``) so the
curve is measurable at any scale; the headline ``parallel_seconds`` runs
under the default break-even policy and records whether it fell back to
serial (``fallback_serial``).  ``REPRO_BENCH_VOLUME_ROW=<scale>`` adds a
scan-only row at a different traffic scale (the issue's ``volume_scale >=
10`` trajectory point) without paying for a full study at that scale.

``test_rules_vs_throughput`` sweeps *ruleset* size instead of traffic
volume: deterministic synthetic Snort rulesets (64 → 10k rules, see
``repro.nids.scale``) scanned serial and forced-parallel over a fixed
synthetic session corpus, recorded to the ``rules_sweep`` section of the
same JSON.  Both writers merge into ``BENCH_pipeline.json`` rather than
overwriting it, so either can run alone.
"""

import json
import os
import time

from repro.datasets.seed_cves import STUDY_WINDOW
from repro.exploits.rulegen import build_study_ruleset
from repro.nids.engine import DetectionEngine
from repro.nids.scale import throughput_sweep
from repro.telescope.collector import DscopeCollector
from repro.telescope.config import TelescopeConfig
from repro.traffic.generator import TrafficConfig, TrafficGenerator

SCAN_WORKERS = int(os.environ.get("REPRO_BENCH_SCAN_WORKERS", "4"))
SCAN_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
SWEEP_WORKERS = [
    int(part)
    for part in os.environ.get("REPRO_BENCH_WORKER_SWEEP", "1,2,4,8").split(",")
    if part.strip()
]
VOLUME_ROW_SCALE = float(os.environ.get("REPRO_BENCH_VOLUME_ROW", "0") or 0)


def _merge_results(results_dir, section, payload):
    """Read-modify-write one section of ``BENCH_pipeline.json``.

    ``test_nids_scan_engines`` and ``test_rules_vs_throughput`` each own a
    disjoint slice of the file; merging (instead of overwriting) lets either
    run alone without clobbering the other's committed numbers.
    """
    path = results_dir / "BENCH_pipeline.json"
    document = {}
    if path.exists():
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):  # torn file: rebuild from scratch
            document = {}
    if section is None:
        document.update(payload)
    else:
        document[section] = payload
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def _cpu_info():
    """(advertised cores, schedulable cores) — they differ in containers."""
    affinity = None
    if hasattr(os, "sched_getaffinity"):
        try:
            affinity = len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - affinity unsupported
            affinity = None
    return os.cpu_count(), affinity


def _small_config():
    return TrafficConfig(volume_scale=0.02, background_per_exploit=0.5)


def test_traffic_generation_throughput(benchmark):
    def generate():
        return TrafficGenerator(_small_config()).generate()

    arrivals = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(arrivals) > 2000


def test_telescope_capture_throughput(benchmark):
    arrivals = TrafficGenerator(_small_config()).generate()

    def collect():
        collector = DscopeCollector(
            TelescopeConfig(concurrent_instances=300), window=STUDY_WINDOW
        )
        return collector.collect(arrivals)

    store = benchmark.pedantic(collect, rounds=3, iterations=1)
    assert len(store) == len(arrivals)


def test_nids_scan_throughput(benchmark):
    arrivals = TrafficGenerator(_small_config()).generate()
    collector = DscopeCollector(window=STUDY_WINDOW)
    store = collector.collect(arrivals)
    ruleset = build_study_ruleset()

    def scan():
        return DetectionEngine(ruleset).scan(store)

    alerts = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert alerts


def _best_scan(make_engine, store, reference_alerts=None):
    """Best-of-``SCAN_REPEATS`` scan; returns (seconds, alerts, stats).

    Every repeat's alert stream is asserted identical to the reference
    (when given) and to the other repeats, so a timing can never come from
    a run that produced different detections.
    """
    best_seconds = None
    best_stats = None
    alerts = None
    for _ in range(max(1, SCAN_REPEATS)):
        engine = make_engine()
        start = time.perf_counter()
        run_alerts = engine.scan(store)
        elapsed = time.perf_counter() - start
        if alerts is None:
            alerts = run_alerts
        else:
            assert run_alerts == alerts
        if reference_alerts is not None:
            assert run_alerts == reference_alerts
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
            best_stats = engine.stats
    return best_seconds, alerts, best_stats


def test_nids_scan_engines(study_full, results_dir):
    """Aho-Corasick baseline vs regex prefilter on the full-scale store.

    Times the serial scan under both prefilter engines and the multiprocess
    scan under the default (regex) engine, asserting all three produce
    identical alert streams, and records everything — including per-engine
    :class:`~repro.nids.engine.ScanTelemetry` — to ``BENCH_pipeline.json``.
    The speedups themselves are recorded, not asserted: they are properties
    of the host, not of the code.  (The acceptance target for this PR stack
    is ``prefilter_speedup >= 3`` at full scale on an unloaded machine.)
    """
    store = study_full.store
    sessions = len(store)

    aho_seconds, aho_alerts, aho_stats = _best_scan(
        lambda: DetectionEngine(build_study_ruleset(prefilter="aho")), store
    )
    regex_ruleset = build_study_ruleset(prefilter="regex")
    regex_seconds, regex_alerts, regex_stats = _best_scan(
        lambda: DetectionEngine(regex_ruleset), store, aho_alerts
    )
    # Headline parallel row: the *default* break-even policy, so the
    # recorded number is what a run_study(workers=N) user actually gets —
    # including a serial fallback when the store is below break-even.
    parallel_seconds, _, parallel_stats = _best_scan(
        lambda: DetectionEngine(regex_ruleset, workers=SCAN_WORKERS),
        store,
        aho_alerts,
    )
    assert regex_stats == aho_stats  # telemetry excluded from equality

    cpu_count, cpu_affinity = _cpu_info()
    schedulable = cpu_affinity if cpu_affinity is not None else cpu_count

    def _sweep_row(workers):
        seconds, _, stats = _best_scan(
            lambda: DetectionEngine(regex_ruleset, workers=workers, threshold=0),
            store,
            aho_alerts,
        )
        telemetry = stats.telemetry
        oversubscribed = schedulable is not None and workers > schedulable
        return {
            "workers": workers,
            "seconds": round(seconds, 3),
            "sessions_per_sec": round(sessions / seconds, 1),
            "speedup": round(regex_seconds / seconds, 3),
            "arena_bytes": telemetry.arena_bytes,
            "arena_build_seconds": round(telemetry.arena_build_seconds, 4),
            "transfer_seconds": round(telemetry.transfer_seconds, 4),
            "pool_reuses": telemetry.pool_reuses,
            "fallback_serial": telemetry.fallback_serial,
            # More workers than schedulable cores measures contention,
            # not the transfer plane: the speedup is not trustworthy.
            "oversubscribed": oversubscribed,
            "unreliable": oversubscribed,
        }

    worker_sweep = [_sweep_row(workers) for workers in SWEEP_WORKERS]

    payload = {
        "sessions": sessions,
        "alerts": len(regex_alerts),
        "workers": SCAN_WORKERS,
        "cpu_count": cpu_count,
        "cpu_affinity": cpu_affinity,
        "repeats": SCAN_REPEATS,
        # Legacy keys: the default-engine (regex) numbers, so the trajectory
        # across PRs stays comparable.
        "serial_seconds": round(regex_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "serial_sessions_per_sec": round(sessions / regex_seconds, 1),
        "parallel_sessions_per_sec": round(sessions / parallel_seconds, 1),
        "speedup": round(regex_seconds / parallel_seconds, 3),
        "fallback_serial": parallel_stats.telemetry.fallback_serial,
        "arena_bytes": parallel_stats.telemetry.arena_bytes,
        "prefilter_speedup": round(aho_seconds / regex_seconds, 3),
        "volume_scale": study_full.config.volume_scale,
        "worker_sweep": worker_sweep,
        "engines": {
            "aho": {
                "serial_seconds": round(aho_seconds, 3),
                "serial_sessions_per_sec": round(sessions / aho_seconds, 1),
                "telemetry": aho_stats.telemetry.as_dict(),
            },
            "regex": {
                "serial_seconds": round(regex_seconds, 3),
                "serial_sessions_per_sec": round(sessions / regex_seconds, 1),
                "parallel_seconds": round(parallel_seconds, 3),
                "parallel_sessions_per_sec": round(
                    sessions / parallel_seconds, 1
                ),
                "telemetry": regex_stats.telemetry.as_dict(),
                "parallel_telemetry": parallel_stats.telemetry.as_dict(),
            },
        },
    }

    if VOLUME_ROW_SCALE > 0:
        # Scan-only trajectory point at a different traffic scale: traffic
        # generation + capture run once (they are not what is being timed),
        # then serial vs default-policy parallel on the resulting store.
        heavy_store = DscopeCollector(window=STUDY_WINDOW).collect(
            TrafficGenerator(
                TrafficConfig(
                    volume_scale=VOLUME_ROW_SCALE, background_per_exploit=1.0
                )
            ).generate()
        )
        heavy_sessions = len(heavy_store)
        heavy_serial, heavy_alerts, _ = _best_scan(
            lambda: DetectionEngine(regex_ruleset), heavy_store
        )
        heavy_parallel, _, heavy_stats = _best_scan(
            lambda: DetectionEngine(regex_ruleset, workers=SCAN_WORKERS),
            heavy_store,
            heavy_alerts,
        )
        oversubscribed = (
            schedulable is not None and SCAN_WORKERS > schedulable
        )
        payload["volume_row"] = {
            "volume_scale": VOLUME_ROW_SCALE,
            "sessions": heavy_sessions,
            "workers": SCAN_WORKERS,
            "serial_seconds": round(heavy_serial, 3),
            "parallel_seconds": round(heavy_parallel, 3),
            "speedup": round(heavy_serial / heavy_parallel, 3),
            "arena_bytes": heavy_stats.telemetry.arena_bytes,
            "fallback_serial": heavy_stats.telemetry.fallback_serial,
            "oversubscribed": oversubscribed,
            "unreliable": oversubscribed,
        }

    _merge_results(results_dir, None, payload)


def test_rules_vs_throughput(results_dir):
    """Scan throughput as the ruleset grows from 64 to 10k synthetic rules.

    Runs :func:`repro.nids.scale.throughput_sweep` — deterministic scaled
    Snort-text rulesets parsed through ``parse_rules``, scanned serial and
    forced-parallel over the same synthetic session corpus — and merges the
    result into ``BENCH_pipeline.json`` under ``rules_sweep``.  Every entry
    asserts the serial and parallel alert streams are byte-identical
    (``alerts_equal``), so a sharding regression fails the bench rather than
    skewing the curve.  Sizes override with ``REPRO_BENCH_RULE_SIZES``;
    sessions with ``REPRO_BENCH_RULE_SESSIONS``.
    """
    sizes = tuple(
        int(part)
        for part in os.environ.get(
            "REPRO_BENCH_RULE_SIZES", "64,1024,4096,10000"
        ).split(",")
        if part.strip()
    )
    session_count = int(os.environ.get("REPRO_BENCH_RULE_SESSIONS", "2000"))
    sweep = throughput_sweep(
        sizes=sizes, session_count=session_count, workers=SCAN_WORKERS
    )
    assert len(sweep["entries"]) == len(sizes)
    assert all(entry["alerts_equal"] for entry in sweep["entries"])
    _merge_results(results_dir, "rules_sweep", sweep)


def test_ruleset_build(benchmark):
    ruleset = benchmark.pedantic(build_study_ruleset, rounds=5, iterations=1)
    assert len(ruleset) == 80
