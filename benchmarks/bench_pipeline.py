"""Performance benchmarks for the measurement stack itself.

Unlike the per-figure benches (which time artifact regeneration on a cached
study run), these measure the system's throughput: traffic generation,
telescope capture, and NIDS scanning — the pieces a downstream user would
size a deployment with.
"""

from repro.datasets.seed_cves import STUDY_WINDOW
from repro.exploits.rulegen import build_study_ruleset
from repro.nids.engine import DetectionEngine
from repro.telescope.collector import DscopeCollector
from repro.telescope.config import TelescopeConfig
from repro.traffic.generator import TrafficConfig, TrafficGenerator


def _small_config():
    return TrafficConfig(volume_scale=0.02, background_per_exploit=0.5)


def test_traffic_generation_throughput(benchmark):
    def generate():
        return TrafficGenerator(_small_config()).generate()

    arrivals = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(arrivals) > 2000


def test_telescope_capture_throughput(benchmark):
    arrivals = TrafficGenerator(_small_config()).generate()

    def collect():
        collector = DscopeCollector(
            TelescopeConfig(concurrent_instances=300), window=STUDY_WINDOW
        )
        return collector.collect(arrivals)

    store = benchmark.pedantic(collect, rounds=3, iterations=1)
    assert len(store) == len(arrivals)


def test_nids_scan_throughput(benchmark):
    arrivals = TrafficGenerator(_small_config()).generate()
    collector = DscopeCollector(window=STUDY_WINDOW)
    store = collector.collect(arrivals)
    ruleset = build_study_ruleset()

    def scan():
        return DetectionEngine(ruleset).scan(store)

    alerts = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert alerts


def test_ruleset_build(benchmark):
    ruleset = benchmark.pedantic(build_study_ruleset, rounds=5, iterations=1)
    assert len(ruleset) == 80
