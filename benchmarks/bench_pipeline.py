"""Performance benchmarks for the measurement stack itself.

Unlike the per-figure benches (which time artifact regeneration on a cached
study run), these measure the system's throughput: traffic generation,
telescope capture, and NIDS scanning — the pieces a downstream user would
size a deployment with.

``test_nids_scan_parallel_speedup`` additionally times the serial vs
multiprocess scan on the session-scoped full-scale store and writes a
machine-readable ``results/BENCH_pipeline.json`` (sessions/sec, speedup,
worker count), so the perf trajectory is tracked across PRs.  Worker count
defaults to 4; override with ``REPRO_BENCH_SCAN_WORKERS``.
"""

import json
import os
import time

from repro.datasets.seed_cves import STUDY_WINDOW
from repro.exploits.rulegen import build_study_ruleset
from repro.nids.engine import DetectionEngine
from repro.telescope.collector import DscopeCollector
from repro.telescope.config import TelescopeConfig
from repro.traffic.generator import TrafficConfig, TrafficGenerator

SCAN_WORKERS = int(os.environ.get("REPRO_BENCH_SCAN_WORKERS", "4"))


def _small_config():
    return TrafficConfig(volume_scale=0.02, background_per_exploit=0.5)


def test_traffic_generation_throughput(benchmark):
    def generate():
        return TrafficGenerator(_small_config()).generate()

    arrivals = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(arrivals) > 2000


def test_telescope_capture_throughput(benchmark):
    arrivals = TrafficGenerator(_small_config()).generate()

    def collect():
        collector = DscopeCollector(
            TelescopeConfig(concurrent_instances=300), window=STUDY_WINDOW
        )
        return collector.collect(arrivals)

    store = benchmark.pedantic(collect, rounds=3, iterations=1)
    assert len(store) == len(arrivals)


def test_nids_scan_throughput(benchmark):
    arrivals = TrafficGenerator(_small_config()).generate()
    collector = DscopeCollector(window=STUDY_WINDOW)
    store = collector.collect(arrivals)
    ruleset = build_study_ruleset()

    def scan():
        return DetectionEngine(ruleset).scan(store)

    alerts = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert alerts


def test_nids_scan_parallel_speedup(study_full, results_dir):
    """Serial vs multiprocess scan on the full-scale store.

    Asserts the parallel scan is *identical* to the serial one and records
    both throughputs to ``BENCH_pipeline.json``.  The speedup itself is
    recorded, not asserted — it is a property of the host (cores), not of
    the code.
    """
    store = study_full.store
    ruleset = build_study_ruleset()

    start = time.perf_counter()
    serial_alerts = DetectionEngine(ruleset).scan(store)
    serial_seconds = time.perf_counter() - start

    parallel_engine = DetectionEngine(ruleset, workers=SCAN_WORKERS)
    start = time.perf_counter()
    parallel_alerts = parallel_engine.scan(store)
    parallel_seconds = time.perf_counter() - start

    assert parallel_alerts == serial_alerts
    sessions = len(store)
    payload = {
        "sessions": sessions,
        "alerts": len(serial_alerts),
        "workers": SCAN_WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "serial_sessions_per_sec": round(sessions / serial_seconds, 1),
        "parallel_sessions_per_sec": round(sessions / parallel_seconds, 1),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "volume_scale": study_full.config.volume_scale,
    }
    (results_dir / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def test_ruleset_build(benchmark):
    ruleset = benchmark.pedantic(build_study_ruleset, rounds=5, iterations=1)
    assert len(ruleset) == 80
