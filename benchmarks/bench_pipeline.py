"""Performance benchmarks for the measurement stack itself.

Unlike the per-figure benches (which time artifact regeneration on a cached
study run), these measure the system's throughput: traffic generation,
telescope capture, and NIDS scanning — the pieces a downstream user would
size a deployment with.

``test_nids_scan_engines`` additionally times the scan on the
session-scoped full-scale store with both prefilter engines — the
Aho-Corasick reference baseline and the C-speed regex prefilter — serial
and multiprocess, and writes a machine-readable
``results/BENCH_pipeline.json`` (sessions/sec per engine, prefilter
speedup, parallel speedup, scan telemetry), so the perf trajectory is
tracked across PRs.  Each timing takes the best of
``REPRO_BENCH_REPEATS`` runs (default 3): wall times on shared hosts
swing several-fold under load, and min-of-K is the standard noise
rejection.  Worker count defaults to 4; override with
``REPRO_BENCH_SCAN_WORKERS``.
"""

import json
import os
import time

from repro.datasets.seed_cves import STUDY_WINDOW
from repro.exploits.rulegen import build_study_ruleset
from repro.nids.engine import DetectionEngine
from repro.telescope.collector import DscopeCollector
from repro.telescope.config import TelescopeConfig
from repro.traffic.generator import TrafficConfig, TrafficGenerator

SCAN_WORKERS = int(os.environ.get("REPRO_BENCH_SCAN_WORKERS", "4"))
SCAN_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def _small_config():
    return TrafficConfig(volume_scale=0.02, background_per_exploit=0.5)


def test_traffic_generation_throughput(benchmark):
    def generate():
        return TrafficGenerator(_small_config()).generate()

    arrivals = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(arrivals) > 2000


def test_telescope_capture_throughput(benchmark):
    arrivals = TrafficGenerator(_small_config()).generate()

    def collect():
        collector = DscopeCollector(
            TelescopeConfig(concurrent_instances=300), window=STUDY_WINDOW
        )
        return collector.collect(arrivals)

    store = benchmark.pedantic(collect, rounds=3, iterations=1)
    assert len(store) == len(arrivals)


def test_nids_scan_throughput(benchmark):
    arrivals = TrafficGenerator(_small_config()).generate()
    collector = DscopeCollector(window=STUDY_WINDOW)
    store = collector.collect(arrivals)
    ruleset = build_study_ruleset()

    def scan():
        return DetectionEngine(ruleset).scan(store)

    alerts = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert alerts


def _best_scan(make_engine, store, reference_alerts=None):
    """Best-of-``SCAN_REPEATS`` scan; returns (seconds, alerts, stats).

    Every repeat's alert stream is asserted identical to the reference
    (when given) and to the other repeats, so a timing can never come from
    a run that produced different detections.
    """
    best_seconds = None
    best_stats = None
    alerts = None
    for _ in range(max(1, SCAN_REPEATS)):
        engine = make_engine()
        start = time.perf_counter()
        run_alerts = engine.scan(store)
        elapsed = time.perf_counter() - start
        if alerts is None:
            alerts = run_alerts
        else:
            assert run_alerts == alerts
        if reference_alerts is not None:
            assert run_alerts == reference_alerts
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
            best_stats = engine.stats
    return best_seconds, alerts, best_stats


def test_nids_scan_engines(study_full, results_dir):
    """Aho-Corasick baseline vs regex prefilter on the full-scale store.

    Times the serial scan under both prefilter engines and the multiprocess
    scan under the default (regex) engine, asserting all three produce
    identical alert streams, and records everything — including per-engine
    :class:`~repro.nids.engine.ScanTelemetry` — to ``BENCH_pipeline.json``.
    The speedups themselves are recorded, not asserted: they are properties
    of the host, not of the code.  (The acceptance target for this PR stack
    is ``prefilter_speedup >= 3`` at full scale on an unloaded machine.)
    """
    store = study_full.store
    sessions = len(store)

    aho_seconds, aho_alerts, aho_stats = _best_scan(
        lambda: DetectionEngine(build_study_ruleset(prefilter="aho")), store
    )
    regex_ruleset = build_study_ruleset(prefilter="regex")
    regex_seconds, regex_alerts, regex_stats = _best_scan(
        lambda: DetectionEngine(regex_ruleset), store, aho_alerts
    )
    parallel_seconds, _, parallel_stats = _best_scan(
        lambda: DetectionEngine(regex_ruleset, workers=SCAN_WORKERS),
        store,
        aho_alerts,
    )
    assert regex_stats == aho_stats  # telemetry excluded from equality

    payload = {
        "sessions": sessions,
        "alerts": len(regex_alerts),
        "workers": SCAN_WORKERS,
        "cpu_count": os.cpu_count(),
        "repeats": SCAN_REPEATS,
        # Legacy keys: the default-engine (regex) numbers, so the trajectory
        # across PRs stays comparable.
        "serial_seconds": round(regex_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "serial_sessions_per_sec": round(sessions / regex_seconds, 1),
        "parallel_sessions_per_sec": round(sessions / parallel_seconds, 1),
        "speedup": round(regex_seconds / parallel_seconds, 3),
        "prefilter_speedup": round(aho_seconds / regex_seconds, 3),
        "volume_scale": study_full.config.volume_scale,
        "engines": {
            "aho": {
                "serial_seconds": round(aho_seconds, 3),
                "serial_sessions_per_sec": round(sessions / aho_seconds, 1),
                "telemetry": aho_stats.telemetry.as_dict(),
            },
            "regex": {
                "serial_seconds": round(regex_seconds, 3),
                "serial_sessions_per_sec": round(sessions / regex_seconds, 1),
                "parallel_seconds": round(parallel_seconds, 3),
                "parallel_sessions_per_sec": round(
                    sessions / parallel_seconds, 1
                ),
                "telemetry": regex_stats.telemetry.as_dict(),
                "parallel_telemetry": parallel_stats.telemetry.as_dict(),
            },
        },
    }
    (results_dir / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def test_ruleset_build(benchmark):
    ruleset = benchmark.pedantic(build_study_ruleset, rounds=5, iterations=1)
    assert len(ruleset) == 80
