"""Benchmark: regenerate Figure 5 (desiderata time-difference CDFs)."""

from conftest import bench_experiment


def test_figure5(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig5")
    for key, deviation in result.deviations().items():
        assert abs(deviation) <= 0.05, (key, deviation)
