"""Benchmark: regenerate Figure 11 (DSCOPE vs KEV first exploitation)."""

from conftest import bench_experiment


def test_figure11(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig11")
    assert result.measured["overlap CVEs"] == 44.0
    assert abs(result.deviations()["DSCOPE-first rate"]) <= 0.08
    assert abs(result.deviations()[">30d earlier rate"]) <= 0.12
