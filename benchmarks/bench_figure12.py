"""Benchmark: regenerate Figure 12 (Confluence CVE-2022-26134, Appendix C)."""

from conftest import bench_experiment


def test_figure12(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig12")
    assert result.measured["mitigated share"] > 0.95
    assert result.measured["untargeted early OGNL"] == 1.0
