"""Benchmark: regenerate Table 5 (per-event desiderata satisfaction).

Shape target: attack-relative desiderata (D<A, F<A, V<A, P<A) near-perfect
per event, in sharp contrast to Table 4's per-CVE rates.  The F<X / D<X
rows deviate from the paper's 0.54 (see EXPERIMENTS.md: with the published
per-CVE event counts and X dates, the event-weighted rate cannot be 0.54;
we report what the data yields).
"""

from conftest import bench_experiment


def test_table5(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "table5")
    measured = result.measured
    assert measured["D < A"] > 0.85
    assert measured["F < A"] > 0.85
    assert measured["V < A"] > 0.97
    assert measured["P < A"] > 0.97
    assert measured["F < P"] < 0.05
    assert measured["D < P"] < 0.05
    assert measured["X < A"] > 0.6
