"""Benchmark: regenerate Figure 4 (events relative to publication)."""

from conftest import bench_experiment


def test_figure4(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig4")
    assert result.measured["peak within 60d of publication"] == 1.0
