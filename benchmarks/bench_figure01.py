"""Benchmark: regenerate Figure 1 (observed CVEs by publication date)."""

from conftest import bench_experiment


def test_figure1(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig1")
    assert result.measured["quarters with new CVEs (of 8)"] == 8.0
