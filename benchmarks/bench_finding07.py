"""Benchmark: regenerate Finding 7 (IDS-vendor-in-disclosure experiment)."""

from conftest import bench_experiment


def test_finding7(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "finding7")
    deviations = result.deviations()
    assert abs(deviations["D<A before"]) <= 0.05
    assert abs(deviations["D<A after"]) <= 0.05
    assert result.measured["skill improvement"] > 0.2
