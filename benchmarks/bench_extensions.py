"""Benchmarks for the extension analyses (beyond the paper's artifacts).

Each bench exercises one extension on the shared full-scale run, asserts
its headline claim, and persists a report next to the per-figure results:

* vendor-sophistication gap (Section 8.1 quantified);
* CVD-skill evolution across publication cohorts (Section 4's outlook);
* the auto-patch counterfactual (Recommendation 1 quantified);
* multi-party coordination metrics (MPCVD view of the dataset);
* live-IDS vs wayback detection (what retroactive scanning adds);
* attribution quality against generator ground truth.
"""

from repro.analysis.coverage import attribution_quality
from repro.analysis.evolution import cohort_skills
from repro.analysis.vendors import category_summaries, sophistication_gap_days
from repro.core.autopatch import auto_patch_sweep
from repro.core.mpcvd import generate_mpcvd_cases, summarise_cases
from repro.lifecycle.exploit_events import events_from_alerts
from repro.nids.live import compare_live_vs_wayback


def test_vendor_sophistication(benchmark, study_full, results_dir):
    summaries = benchmark.pedantic(
        category_summaries, args=(study_full.timelines,), rounds=3, iterations=1
    )
    lines = ["category  cves  median_D-P_days  D<A_rate  prepub_rules"]
    for summary in summaries:
        lines.append(
            f"{summary.category:20s}  {summary.cves:4d}  "
            f"{summary.median_fix_lag_days!s:>15}  "
            f"{summary.defense_first_rate!s:>8}  "
            f"{summary.pre_publication_rules:12d}"
        )
    gap = sophistication_gap_days(study_full.timelines)
    lines.append(f"\nIoT-vs-enterprise median fix lag gap: {gap:.1f} days")
    (results_dir / "ext_vendor_sophistication.txt").write_text(
        "\n".join(lines) + "\n"
    )
    assert gap > 14.0


def test_cohort_evolution(benchmark, study_full, results_dir):
    cohorts = benchmark.pedantic(
        cohort_skills, args=(study_full.timelines,), rounds=3, iterations=1
    )
    lines = ["cohort  cves  mean_skill  D<A_rate"]
    for cohort in cohorts:
        lines.append(
            f"{cohort.label}  {cohort.cves:4d}  "
            f"{cohort.mean_skill if cohort.mean_skill is None else round(cohort.mean_skill, 2)!s:>10}  "
            f"{cohort.defense_first_rate if cohort.defense_first_rate is None else round(cohort.defense_first_rate, 2)!s:>8}"
        )
    (results_dir / "ext_cohort_evolution.txt").write_text("\n".join(lines) + "\n")
    assert sum(cohort.cves for cohort in cohorts) == 64


def test_autopatch_counterfactual(benchmark, study_full, results_dir):
    outcomes = benchmark.pedantic(
        auto_patch_sweep,
        args=(study_full.kept_events, study_full.timelines),
        rounds=2,
        iterations=1,
    )
    lines = ["delay_days  mitigated_share  exposure_avoided"]
    for outcome in outcomes:
        lines.append(
            f"{outcome.delay_days:10.1f}  {outcome.policy_share:15.3f}  "
            f"{outcome.exposure_avoided:16.3f}"
        )
    (results_dir / "ext_autopatch.txt").write_text("\n".join(lines) + "\n")
    instant = outcomes[0]
    assert instant.exposure_avoided > 0.5
    assert instant.policy_share > instant.baseline_share


def test_mpcvd_summary(benchmark, study_full, results_dir):
    cases = generate_mpcvd_cases(study_full.timelines)
    summary = benchmark.pedantic(
        summarise_cases, args=(cases,), rounds=3, iterations=1
    )
    (results_dir / "ext_mpcvd.txt").write_text(
        f"cases: {summary.cases}\n"
        f"parties aware before publication: {summary.mean_aware_before_public:.2f}\n"
        f"parties with fix before publication: {summary.mean_fix_before_public:.2f}\n"
        f"fully coordinated disclosures: {summary.fully_coordinated_rate:.2f}\n"
        f"median fix spread (days): {summary.median_fix_spread_days:.1f}\n"
    )
    assert summary.fully_coordinated_rate < 0.3


def test_live_vs_wayback(benchmark, study_full, results_dir):
    sessions = list(study_full.store)

    comparison = benchmark.pedantic(
        compare_live_vs_wayback,
        args=(study_full.ruleset, sessions),
        rounds=1,
        iterations=1,
    )
    (results_dir / "ext_live_vs_wayback.txt").write_text(
        f"sessions: {comparison.sessions}\n"
        f"retrospective alerts: {comparison.retrospective_alerts}\n"
        f"live alerts: {comparison.live_alerts}\n"
        f"missed live (zero-day evidence): {comparison.missed_live} "
        f"({comparison.missed_share:.1%})\n"
    )
    assert comparison.missed_live > 0
    assert comparison.missed_share > 0.02


def test_attribution_quality(benchmark, study_full, results_dir):
    events = events_from_alerts(study_full.alerts)
    quality = benchmark.pedantic(
        attribution_quality,
        args=(events, study_full.ground_truth),
        rounds=2,
        iterations=1,
    )
    (results_dir / "ext_attribution.txt").write_text(
        f"exploit sessions: {quality.exploit_sessions}\n"
        f"recall: {quality.recall:.4f}\n"
        f"precision: {quality.precision:.4f}\n"
        f"injected FP alerts (for RCA): {quality.injected_fp_alerts}\n"
        f"unexpected background alerts: {quality.unexpected_background_alerts}\n"
    )
    assert quality.recall == 1.0
    assert quality.precision == 1.0
    assert quality.unexpected_background_alerts == 0


def test_adoption_curve_exposure(benchmark, study_full, results_dir):
    """Gradual patch adoption vs the point-in-time D assumption (the
    paper's open question 3 quantified)."""
    from repro.core.adoption import AdoptionCurve, expected_exposure

    def sweep():
        rows = []
        for half_life in (0.0, 3.0, 14.0, 60.0):
            curve = AdoptionCurve(
                half_life_days=half_life,
                ceiling=1.0 if half_life == 0.0 else 0.95,
            )
            outcome = expected_exposure(
                study_full.kept_events, study_full.timelines, curve=curve
            )
            rows.append((half_life, outcome))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["half_life_days  expected_compromised_share  vs_point_model"]
    for half_life, outcome in rows:
        lines.append(
            f"{half_life:14.1f}  {outcome.expected_share:26.3f}  "
            f"{outcome.underestimate_factor:14.2f}x"
        )
    (results_dir / "ext_adoption.txt").write_text("\n".join(lines) + "\n")
    by_half_life = {half_life: outcome for half_life, outcome in rows}
    assert (
        by_half_life[60.0].expected_compromises
        > by_half_life[3.0].expected_compromises
    )
