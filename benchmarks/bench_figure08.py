"""Benchmark: regenerate Figure 8 (Log4Shell sessions CDF)."""

from conftest import bench_experiment


def test_figure8(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig8")
    assert result.measured["early concentration"] == 1.0
    assert result.measured["late resurgence share"] > 0.05
