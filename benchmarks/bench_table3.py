"""Benchmark: regenerate Table 3 (desiderata matrices)."""

from conftest import bench_experiment


def test_table3(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "table3")
    # Both matrices render, 6x6 plus headers.
    assert "Table 3 (householder-spring)" in result.text
    assert "Table 3 (this-work)" in result.text
