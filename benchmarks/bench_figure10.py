"""Benchmark: regenerate Figure 10 (A − P for KEV entries)."""

from conftest import bench_experiment


def test_figure10(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig10")
    assert abs(result.deviations()["KEV A<P rate"]) <= 0.08
    assert result.measured["KEV CVEs in window"] == 424.0
