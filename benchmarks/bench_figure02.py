"""Benchmark: regenerate Figure 2 (CVSS CDFs: studied vs KEV vs all)."""

from conftest import bench_experiment


def test_figure2(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig2")
    assert result.measured["studied median"] == 9.8
    assert result.measured["kev median higher than all"] == 1.0
    assert result.measured["studied median higher than kev"] == 1.0
