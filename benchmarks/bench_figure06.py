"""Benchmark: regenerate Figure 6 (CVE bins by rule availability)."""

from conftest import bench_experiment


def test_figure6(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "fig6")
    # Finding 11: beyond the first bin, rule-covered CVEs dominate most
    # (not necessarily all) bins.
    assert result.measured["mitigated-majority bins after day 5"] > 0.6
