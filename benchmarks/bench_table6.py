"""Benchmark: regenerate Table 6 (Log4Shell mitigation variants)."""

from conftest import bench_experiment


def test_table6(benchmark, study_full, results_dir):
    result = bench_experiment(benchmark, study_full, results_dir, "table6")
    assert result.measured["variants observed"] == 15.0
    # The table text carries one row per SID.
    for sid in (58722, 300057, 58751, 59246):
        assert str(sid) in result.text
