#!/usr/bin/env python3
"""Disclosure-policy lab: counterfactual CVD experiments on real lifecycles.

The paper's Section 6 argues CVD policy with two quantitative levers; this
example turns both into a small what-if laboratory:

1. **Include IDS vendors in coordinated disclosure** (Finding 7): snap rule
   deployment to the announcement for CVEs whose rules trailed publication
   by various inclusion windows, and watch the D < A desideratum respond.
2. **The registered-user rule delay** (Section 5 footnote 2): non-paying
   Snort users receive rules 30 days late; re-run the lifecycle assembly
   under increasing feed delays and watch defense-before-attack collapse.

    python examples/disclosure_policy_lab.py
"""

from datetime import timedelta

from repro import build_bundle, default_plan
from repro.core.hypothetical import ids_vendor_inclusion_experiment
from repro.core.skill import compute_skill
from repro.lifecycle.assembly import assemble_timelines
from repro.util.tables import render_table


def inclusion_window_sweep(timelines) -> None:
    rows = []
    for window_days in (0, 7, 14, 30, 60, 120):
        outcome = ids_vendor_inclusion_experiment(
            timelines, inclusion_window=timedelta(days=window_days)
        )
        rows.append([
            window_days,
            f"{outcome.satisfied_before:.2f}",
            f"{outcome.satisfied_after:.2f}",
            f"{outcome.skill_after:.2f}",
            outcome.cves_shifted,
        ])
    print(render_table(
        ["inclusion window (days)", "D<A before", "D<A after",
         "skill after", "CVEs shifted"],
        rows,
        title="Lever 1: include IDS vendors in disclosure (Finding 7)",
    ))


def rule_delay_sweep() -> None:
    rows = []
    for delay_days in (0, 7, 30, 90):
        bundle = build_bundle(default_plan(rule_delay_days=delay_days,
                                           background_count=100))
        timelines = assemble_timelines(bundle)
        reports = {
            r.desideratum.label: r for r in compute_skill(timelines.values())
        }
        rows.append([
            delay_days,
            f"{reports['D < A'].observed:.2f}",
            f"{reports['D < A'].skill:.2f}",
            f"{reports['D < X'].observed:.2f}",
        ])
    print(render_table(
        ["feed delay (days)", "D<A satisfied", "D<A skill", "D<X satisfied"],
        rows,
        title="Lever 2: registered-user rule feed delay (footnote 2)",
    ))


def main() -> None:
    bundle = build_bundle(default_plan(background_count=100))
    timelines = assemble_timelines(bundle)

    inclusion_window_sweep(timelines)
    print()
    rule_delay_sweep()
    print(
        "\nReading: a modest inclusion window already recovers most of the\n"
        "achievable D < A improvement, while even the standard 30-day feed\n"
        "delay erases much of the defense-before-attack advantage — the\n"
        "paper's argument that IDS vendors belong inside coordinated\n"
        "disclosure, and that rule delivery delays are security-critical."
    )


if __name__ == "__main__":
    main()
