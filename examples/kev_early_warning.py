#!/usr/bin/env python3
"""Early warning: telescope observations vs the CISA KEV catalog.

Reproduces Section 7.2: for CVEs present in both datasets, how much earlier
(or later) did the telescope observe first exploitation than the official
Known Exploited Vulnerabilities catalog recorded it?  The paper's headline:
DSCOPE sees 59% of overlapping CVEs first, half of them more than 30 days
before the KEV addition — telescopes as an early-warning feed for
vulnerability prioritisation.

    python examples/kev_early_warning.py
"""

import argparse

from repro import StudyConfig, run_study
from repro.analysis.kev_compare import compare_with_kev
from repro.lifecycle.exploit_events import first_attacks
from repro.util.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--top", type=int, default=12,
                        help="rows of the largest leads to print")
    args = parser.parse_args()

    print(f"running study (volume scale {args.scale}) ...")
    result = run_study(StudyConfig(volume_scale=args.scale,
                                   background_nvd_count=2000))
    firsts = first_attacks(result.kept_events)
    comparison = compare_with_kev(result.bundle, firsts)

    print(f"\nKEV entries published in the study window: "
          f"{comparison.kev_in_window}")
    print(f"studied CVEs also in KEV: {comparison.overlap_count} "
          f"(DSCOPE-only: {len(comparison.dscope_only_cves)})")
    print(f"telescope saw exploitation first: "
          f"{comparison.dscope_first_rate:.0%}  (paper: 59%)")
    print(f"telescope over 30 days earlier: "
          f"{comparison.dscope_month_earlier_rate:.0%}  (paper: 50%)")
    print(f"KEV additions predating NVD publication: "
          f"{comparison.kev_pre_publication_rate:.0%}  (paper: 18%)")

    kev_by_cve = result.bundle.kev_by_cve
    leads = []
    for cve_id in comparison.overlap_cves:
        delta_days = (firsts[cve_id] - kev_by_cve[cve_id].date_added).days
        leads.append((delta_days, cve_id))
    leads.sort()

    rows = [
        [cve_id, firsts[cve_id].date(), kev_by_cve[cve_id].date_added.date(),
         f"{-delta}d earlier" if delta < 0 else f"{delta}d later"]
        for delta, cve_id in leads[: args.top]
    ]
    print()
    print(render_table(
        ["CVE", "first telescope attack", "KEV addition", "telescope lead"],
        rows,
        title=f"Largest telescope leads over KEV (top {args.top})",
    ))


if __name__ == "__main__":
    main()
