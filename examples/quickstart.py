#!/usr/bin/env python3
"""Quickstart: run the full study pipeline and print the headline results.

This reproduces the paper's core loop end to end:

    synthetic Internet traffic  ->  DSCOPE telescope capture
    ->  post-facto Snort evaluation (port-insensitive, earliest SID)
    ->  root-cause analysis  ->  CVE lifecycles  ->  CVD skill (Table 4)

Run with a smaller ``--scale`` for a faster demo (first-attack timing — and
therefore every lifecycle statistic — is unaffected by scale; only event
volumes shrink).

    python examples/quickstart.py --scale 0.05
"""

import argparse

from repro import StudyConfig, run_study
from repro.core.exposure import mitigated_share, unmitigated_half_life_days
from repro.core.skill import compute_skill, mean_skill
from repro.reporting.tables import render_skill_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="traffic volume scale (1.0 = the paper's ~117k exploit events)",
    )
    parser.add_argument("--seed", type=int, default=20230321)
    args = parser.parse_args()

    print(f"running study (volume scale {args.scale}, seed {args.seed}) ...")
    result = run_study(
        StudyConfig(seed=args.seed, volume_scale=args.scale,
                    background_nvd_count=5000)
    )

    stats = result.collection_stats
    print(f"\ncaptured {len(result.store):,} TCP sessions on "
          f"{stats.unique_receiving_ips:,} telescope IPs "
          f"from {stats.unique_source_ips:,} sources")
    print(f"NIDS attributed {len(result.events):,} sessions; root-cause "
          f"analysis kept {len(result.kept_cves)} CVEs and dropped "
          f"{len(result.dropped_cves)} false-positive signatures "
          f"({', '.join(result.dropped_cves)})")

    reports = compute_skill(result.timelines.values())
    print()
    print(render_skill_table(reports, title="Table 4 (measured)"))
    print(f"\nmean skill: {mean_skill(reports):.2f}  (paper: 0.37)")
    print(f"per-event mitigated share: "
          f"{mitigated_share(result.kept_events):.2f}  (paper: 0.95)")
    print(f"50% of unmitigated exposure within "
          f"{unmitigated_half_life_days(result.kept_events, result.timelines):.0f} "
          f"days of publication  (paper: 30)")


if __name__ == "__main__":
    main()
