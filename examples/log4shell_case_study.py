#!/usr/bin/env python3
"""Case study: the Log4Shell (CVE-2021-44228) attack/defense arms race.

Reproduces Section 7.1 of the paper: the campaign's burst-then-tail shape
with a late resurgence (Figure 8), the December 2021 variant race in which
adversaries iterated obfuscations against freshly deployed signatures
(Figure 9), and the measured Table 6 — each signature's first matching
attack relative to its own publication.

    python examples/log4shell_case_study.py
"""

import argparse

from repro import StudyConfig, run_study
from repro.analysis.log4shell import analyse_log4shell, table6_rows
from repro.reporting.tables import render_table6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()

    print(f"running study (volume scale {args.scale}) ...")
    result = run_study(StudyConfig(volume_scale=args.scale,
                                   background_nvd_count=2000))
    analysis = analyse_log4shell(result.events_per_cve)

    print(f"\nLog4Shell exploit events observed: {analysis.total_events:,}")
    print(f"share within one week of publication: "
          f"{analysis.first_week_share:.0%}")
    print(f"share more than 300 days after publication (resurgence, "
          f"Finding 13): {analysis.resurgence_share_after_300d:.0%}")

    print("\nDecember 2021 signature-group activity (Figure 9):")
    for group, cdf in sorted(analysis.group_cdfs_december.items()):
        median_day = cdf.quantile(0.5)
        print(f"  group {group}: {cdf.n:6,} sessions in December, "
              f"median on Dec {int(median_day) + 1}")

    print()
    print(render_table6(table6_rows(analysis)))
    print("\nNegative 'A - D' rows are variants whose traffic predates the")
    print("signature built for them — adversarial adaptation outrunning")
    print("defense (Finding 14); they are only discoverable because the")
    print("archive is scanned post-facto (the 'wayback' methodology).")


if __name__ == "__main__":
    main()
