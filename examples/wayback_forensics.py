#!/usr/bin/env python3
"""The "wayback machine" itself: retroactive scanning of archived traffic.

This example demonstrates the paper's core methodological trick in
isolation.  We capture traffic into a session archive, then — *after the
fact* — take a signature that did not exist when the traffic arrived and
scan the archive with it, revealing pre-publication ("zero-day")
exploitation that no live IDS could have flagged.

It also shows the companion step, root-cause analysis: an overly general
signature matches credential-stuffing traffic, and the RCA heuristics
reject the CVE as a false positive while keeping the genuinely exploited
one (paper Section 3.2).

    python examples/wayback_forensics.py
"""

from repro.datasets.seed_cves import STUDY_WINDOW, seed_by_id
from repro.exploits.rulegen import build_study_ruleset, sid_to_cve
from repro.lifecycle.exploit_events import events_by_cve, events_from_alerts
from repro.lifecycle.rca import RootCauseAnalysis
from repro.nids.engine import DetectionEngine
from repro.telescope.collector import DscopeCollector
from repro.telescope.config import TelescopeConfig
from repro.traffic.generator import TrafficConfig, TrafficGenerator


def main() -> None:
    # 1. Capture two years of traffic into the archive (scaled down).
    generator = TrafficGenerator(
        TrafficConfig(volume_scale=0.05, background_per_exploit=1.0)
    )
    arrivals = generator.generate()
    collector = DscopeCollector(TelescopeConfig(), window=STUDY_WINDOW)
    store = collector.collect(arrivals)
    print(f"archived {len(store):,} sessions "
          f"({collector.stats.unique_receiving_ips:,} telescope IPs)")

    # 2. Retroactive scan: evaluate the full (future-knowledge) ruleset
    #    over the entire archive.
    ruleset = build_study_ruleset()
    engine = DetectionEngine(ruleset)
    alerts = engine.scan(store)
    pre_publication = [a for a in alerts if a.pre_publication]
    print(f"\nretroactive scan: {len(alerts):,} sessions matched; "
          f"{len(pre_publication):,} matched signatures that did not yet "
          f"exist when the traffic arrived")

    # 3. The zero-day payoff: Confluence-style OGNL scanning seen more than
    #    a year before the CVE it would later exploit was published.
    target = seed_by_id("CVE-2022-28938")
    early = [
        a for a in alerts
        if a.cve_id == target.cve_id and a.timestamp < target.published
    ]
    if early:
        lead = target.published - min(a.timestamp for a in early)
        print(f"\n{target.cve_id}: earliest matching traffic "
              f"{lead.days} days BEFORE the CVE was published")
        ports = sorted({a.dst_port for a in early})
        print(f"  early traffic hit ports {ports} — generic OGNL scanning, "
              f"not Confluence-targeted (Finding 19)")

    # 4. Root-cause analysis separates such genuine early exploitation from
    #    signature false positives.
    rca = RootCauseAnalysis(store)
    grouped = events_by_cve(events_from_alerts(alerts))
    kept, decisions = rca.filter(grouped)
    print(f"\nroot-cause analysis: kept {len(kept)} CVEs")
    for decision in decisions:
        if not decision.kept:
            print(f"  dropped {decision.cve_id}: {decision.reason} "
                  f"(exploit-like fraction "
                  f"{decision.exploit_fraction:.0%} of leading traffic)")
    assert target.cve_id in kept, "genuine early exploitation must survive"


if __name__ == "__main__":
    main()
