#!/usr/bin/env python3
"""Multi-party coordination and the limits of single-vendor CVD.

Three extension analyses built on the measured lifecycles:

1. **MPCVD view** — expand each CVE into a multi-party case (software
   vendor, IDS vendor, a downstream distributor) and measure coordination
   quality: how often does *every* party have a fix before publication?
2. **Luck baselines under multi-party disclosure** — the Markov model shows
   coordination gets harder by luck alone as parties are added.
3. **Vendor sophistication** — mitigation availability by vendor category
   (enterprise vs appliance vs IoT vs open source), the Section 8 story.

    python examples/multiparty_coordination.py
"""

from repro import build_bundle, default_plan
from repro.analysis.vendors import category_summaries, sophistication_gap_days
from repro.core.mpcvd import MultiPartyModel, generate_mpcvd_cases, summarise_cases
from repro.lifecycle.assembly import assemble_timelines
from repro.util.tables import render_table


def main() -> None:
    timelines = assemble_timelines(build_bundle(default_plan(background_count=100)))

    # 1. Multi-party coordination quality.
    cases = generate_mpcvd_cases(timelines)
    summary = summarise_cases(cases)
    print("MPCVD view of the studied CVEs "
          f"({summary.cases} cases, 3 parties each):")
    print(f"  parties aware before publication: "
          f"{summary.mean_aware_before_public:.0%}")
    print(f"  parties with a fix before publication: "
          f"{summary.mean_fix_before_public:.0%}")
    print(f"  fully coordinated disclosures (every party ready): "
          f"{summary.fully_coordinated_rate:.0%}")
    print(f"  median fix spread across parties: "
          f"{summary.median_fix_spread_days:.0f} days")

    # 2. Coordination by luck, as parties are added.  A single party's
    # pairwise baselines are invariant in party count (each party's chain
    # races the shared events independently); the *joint* ideal — every
    # party's fix ready before publication — is what collapses.
    print("\nLuck baseline for the joint ideal 'every party's fix before "
          "publication':")
    for parties in (1, 2, 3, 4):
        model = MultiPartyModel.mpcvd(parties)
        joint = model.predicate_probability_mc(
            model.all_fixes_before_public, samples=20000
        )
        print(f"  {parties} part{'y ' if parties == 1 else 'ies'}: {joint:.3f}")
    print("  -> synchronised multi-party readiness is exponentially unlikely")
    print("     by luck; achieving it takes coordination, which is exactly")
    print("     what the measured 9% fully-coordinated rate shows is rare.")

    # 3. Vendor sophistication.
    rows = []
    for summary_row in category_summaries(timelines):
        rows.append([
            summary_row.category,
            summary_row.cves,
            None if summary_row.median_fix_lag_days is None
            else round(summary_row.median_fix_lag_days, 1),
            None if summary_row.defense_first_rate is None
            else round(summary_row.defense_first_rate, 2),
            summary_row.pre_publication_rules,
        ])
    print()
    print(render_table(
        ["vendor category", "CVEs", "median D-P (days)", "D<A rate",
         "pre-pub rules"],
        rows,
        title="Mitigation speed by vendor sophistication",
    ))
    gap = sophistication_gap_days(timelines)
    print(f"\nIoT/embedded mitigations lag enterprise software by "
          f"{gap:.0f} days at the median — the Section 8 argument for "
          f"routing disclosure through parties (like IDS vendors) that can "
          f"ship defenses when the vendor cannot.")


if __name__ == "__main__":
    main()
